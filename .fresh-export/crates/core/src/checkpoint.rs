//! Durable training-state checkpoints and generation-numbered checkpoint
//! directories — the crash-safety layer under [`crate::pipeline`].
//!
//! A [`TrainState`] is everything needed to resume a training run so that
//! the resumed run is **bit-identical** to an uninterrupted one: the
//! parameters, the Adam moment estimates and step count, the epoch counter,
//! the RNG seed (per-epoch RNG streams are a pure function of
//! `(seed, epoch)`, so the seed plus the epoch counter *is* the RNG stream
//! position), and the watchdog's history and recovery log.
//!
//! On disk a state is one `ckpt-NNNNNNNN.amts` file per generation
//! (generation = epochs completed), written via
//! [`amdgcnn_tensor::write_atomic`] (write-to-temp + fsync + atomic
//! rename). The file's header carries its own CRC-32 and the three
//! embedded parameter blobs (model params, Adam first moments, Adam second
//! moments) use the checksummed `AMDG` v2 format, so a torn write or a
//! flipped bit anywhere is detected at load. [`CheckpointDir::latest`]
//! walks generations newest-first and returns the newest one that loads
//! cleanly — a crash mid-write can only cost the torn generation, never a
//! previously committed one.

use crate::error::{Error, Result};
use crate::train::{DivergenceCause, EpochStats, RecoveryEvent};
use amdgcnn_nn::AdamState;
use amdgcnn_tensor::durable::{write_atomic, CrcReader, CrcWriter, DiskFault};
use amdgcnn_tensor::io::{load_params, save_params};
use amdgcnn_tensor::{Matrix, ParamStore};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"AMTS";
const VERSION: u32 = 1;

/// Ceilings on header-declared list lengths: a real history has one entry
/// per epoch, so anything beyond this is a corrupt file, not a long run.
const MAX_LIST_LEN: usize = 1 << 24;

/// A complete, resumable snapshot of a training run.
#[derive(Debug, Clone)]
pub struct TrainState {
    /// Epochs completed when the snapshot was taken. Together with `seed`
    /// this pins the RNG stream position: shuffle and dropout streams are
    /// derived per-epoch from `(seed, epoch)`.
    pub epochs_done: usize,
    /// The training seed the run was started with. Verified on resume so a
    /// checkpoint cannot silently continue under a different data order.
    pub seed: u64,
    /// Model parameters.
    pub params: ParamStore,
    /// Adam step count and moment estimates.
    pub opt: AdamState,
    /// Per-epoch loss history up to the snapshot.
    pub history: Vec<EpochStats>,
    /// Watchdog recovery log up to the snapshot.
    pub recoveries: Vec<RecoveryEvent>,
}

/// Serialize a [`TrainState`] to `w`: CRC-guarded header, then three
/// checksummed parameter blobs (params, Adam `m`, Adam `v`).
pub fn save_train_state<W: Write>(state: &TrainState, w: W) -> io::Result<()> {
    let mut w = CrcWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(state.epochs_done as u64).to_le_bytes())?;
    w.write_all(&state.seed.to_le_bytes())?;
    w.write_all(&state.opt.t.to_le_bytes())?;
    w.write_all(&(state.history.len() as u32).to_le_bytes())?;
    for e in &state.history {
        w.write_all(&(e.epoch as u32).to_le_bytes())?;
        w.write_all(&e.loss.to_le_bytes())?;
        w.write_all(&(e.retries as u32).to_le_bytes())?;
    }
    w.write_all(&(state.recoveries.len() as u32).to_le_bytes())?;
    for r in &state.recoveries {
        w.write_all(&(r.epoch as u32).to_le_bytes())?;
        w.write_all(&(r.attempt as u32).to_le_bytes())?;
        let cause: u8 = match r.cause {
            DivergenceCause::NonFiniteLoss => 0,
            DivergenceCause::NonFiniteGradient => 1,
        };
        w.write_all(&[cause])?;
        w.write_all(&r.lr_next.to_le_bytes())?;
    }
    let header_crc = w.total_crc();
    w.write_unchecked(&header_crc.to_le_bytes())?;

    let mut inner = w.into_inner();
    save_params(&state.params, &mut inner)?;
    save_params(&moments_store(&state.opt.m), &mut inner)?;
    save_params(&moments_store(&state.opt.v), &mut inner)?;
    Ok(())
}

/// Deserialize a [`TrainState`] written by [`save_train_state`], verifying
/// the header CRC and every embedded blob checksum.
///
/// # Errors
/// [`io::ErrorKind::InvalidData`] on bad magic/version, truncation,
/// checksum mismatch, or implausible header-declared lengths.
pub fn load_train_state<R: Read>(r: R) -> io::Result<TrainState> {
    let mut r = CrcReader::new(r);
    let mut magic = [0u8; 4];
    read_checked(&mut r, &mut magic, "magic")?;
    if &magic != MAGIC {
        return Err(invalid("bad train-state magic"));
    }
    let version = read_u32(&mut r, "version")?;
    if version != VERSION {
        return Err(invalid(format!(
            "unsupported train-state version {version}"
        )));
    }
    let epochs_done = read_u64(&mut r, "epoch counter")? as usize;
    let seed = read_u64(&mut r, "seed")?;
    let t = read_u64(&mut r, "adam step count")?;
    let history_len = read_u32(&mut r, "history length")? as usize;
    if history_len > MAX_LIST_LEN {
        return Err(invalid(format!("implausible history length {history_len}")));
    }
    let mut history = Vec::with_capacity(history_len.min(1024));
    for _ in 0..history_len {
        let epoch = read_u32(&mut r, "history epoch")? as usize;
        let loss = f32::from_le_bytes(read_4(&mut r, "history loss")?);
        let retries = read_u32(&mut r, "history retries")? as usize;
        history.push(EpochStats {
            epoch,
            loss,
            retries,
        });
    }
    let recoveries_len = read_u32(&mut r, "recovery length")? as usize;
    if recoveries_len > MAX_LIST_LEN {
        return Err(invalid(format!(
            "implausible recovery length {recoveries_len}"
        )));
    }
    let mut recoveries = Vec::with_capacity(recoveries_len.min(1024));
    for _ in 0..recoveries_len {
        let epoch = read_u32(&mut r, "recovery epoch")? as usize;
        let attempt = read_u32(&mut r, "recovery attempt")? as usize;
        let mut cause = [0u8; 1];
        read_checked(&mut r, &mut cause, "recovery cause")?;
        let cause = match cause[0] {
            0 => DivergenceCause::NonFiniteLoss,
            1 => DivergenceCause::NonFiniteGradient,
            c => return Err(invalid(format!("unknown divergence cause tag {c}"))),
        };
        let lr_next = f32::from_le_bytes(read_4(&mut r, "recovery lr")?);
        recoveries.push(RecoveryEvent {
            epoch,
            attempt,
            cause,
            lr_next,
        });
    }
    let expect = r.total_crc();
    let mut stored = [0u8; 4];
    r.read_exact_unchecked(&mut stored).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            invalid("train state truncated while reading header checksum")
        } else {
            e
        }
    })?;
    if u32::from_le_bytes(stored) != expect {
        return Err(invalid("train-state header checksum mismatch"));
    }

    let params = load_params(&mut r)?;
    let m = moments_from_store(load_params(&mut r)?)?;
    let v = moments_from_store(load_params(&mut r)?)?;
    Ok(TrainState {
        epochs_done,
        seed,
        params,
        opt: AdamState { t, m, v },
        history,
        recoveries,
    })
}

/// Pack sparse moment slots into a `ParamStore`: slot `i` with a moment
/// becomes a parameter named `i`; absent slots are encoded by a final
/// sentinel `len` parameter recording the slot count. This reuses the
/// checksummed `AMDG` format instead of inventing another container.
fn moments_store(slots: &[Option<Matrix>]) -> ParamStore {
    let mut ps = ParamStore::new();
    for (i, slot) in slots.iter().enumerate() {
        if let Some(m) = slot {
            ps.register(i.to_string(), m.clone());
        }
    }
    ps.register(format!("len:{}", slots.len()), Matrix::zeros(1, 1));
    ps
}

/// Inverse of [`moments_store`].
fn moments_from_store(ps: ParamStore) -> io::Result<Vec<Option<Matrix>>> {
    let mut len: Option<usize> = None;
    let mut entries: Vec<(usize, Matrix)> = Vec::new();
    for (id, value) in ps.iter() {
        let name = ps.name(id);
        if let Some(n) = name.strip_prefix("len:") {
            len = Some(
                n.parse()
                    .map_err(|_| invalid(format!("bad moment slot count {n:?}")))?,
            );
        } else {
            let i: usize = name
                .parse()
                .map_err(|_| invalid(format!("bad moment slot name {name:?}")))?;
            entries.push((i, (**value).clone()));
        }
    }
    let len = len.ok_or_else(|| invalid("moment blob missing slot count"))?;
    if len > MAX_LIST_LEN {
        return Err(invalid(format!("implausible moment slot count {len}")));
    }
    let mut slots = vec![None; len];
    for (i, m) in entries {
        let slot = slots
            .get_mut(i)
            .ok_or_else(|| invalid(format!("moment slot {i} beyond count {len}")))?;
        *slot = Some(m);
    }
    Ok(slots)
}

/// A directory of generation-numbered [`TrainState`] files.
///
/// Writes are crash-safe (temp + fsync + atomic rename) and every
/// generation is independently checksummed, so after a crash at *any*
/// instant the directory still yields the newest fully committed
/// generation. [`save`](Self::save) never deletes the previous generation
/// before the new one is durably in place.
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    dir: PathBuf,
}

impl CheckpointDir {
    /// Bind to `dir`, creating it if missing.
    ///
    /// # Errors
    /// [`Error::CheckpointIo`] when the directory cannot be created.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| Error::CheckpointIo {
            detail: format!("cannot create checkpoint dir {}: {e}", dir.display()),
        })?;
        Ok(Self { dir })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// File path of generation `generation`.
    pub fn generation_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{generation:08}.amts"))
    }

    /// Committed generation numbers, ascending. Stale `.tmp` files from
    /// interrupted writes are ignored.
    pub fn generations(&self) -> Result<Vec<u64>> {
        let mut out = Vec::new();
        let entries = std::fs::read_dir(&self.dir).map_err(|e| Error::CheckpointIo {
            detail: format!("cannot read checkpoint dir {}: {e}", self.dir.display()),
        })?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(num) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".amts"))
            {
                if let Ok(g) = num.parse::<u64>() {
                    out.push(g);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Durably write `state` as generation `state.epochs_done`, then prune
    /// old generations down to `keep` (at least 2 are always retained so a
    /// torn newest generation leaves a fallback). Returns the generation
    /// number written.
    ///
    /// `fault` deterministically injects a durability failure for testing;
    /// pass `None` in production.
    ///
    /// # Errors
    /// [`Error::CheckpointIo`] on serialization or I/O failure.
    pub fn save(&self, state: &TrainState, keep: usize, fault: Option<DiskFault>) -> Result<u64> {
        let generation = state.epochs_done as u64;
        let mut buf = Vec::new();
        save_train_state(state, &mut buf).map_err(|e| Error::CheckpointIo {
            detail: format!("cannot serialize generation {generation}: {e}"),
        })?;
        let path = self.generation_path(generation);
        write_atomic(&path, &buf, fault).map_err(|e| Error::CheckpointIo {
            detail: format!("cannot write {}: {e}", path.display()),
        })?;
        self.prune(keep.max(2));
        Ok(generation)
    }

    /// Load the newest generation that passes all integrity checks,
    /// together with its generation number. Corrupt newer generations
    /// (torn writes, bit flips) are skipped, never silently accepted.
    /// Returns `Ok(None)` when the directory holds no checkpoint files at
    /// all (a fresh run).
    ///
    /// # Errors
    /// [`Error::CheckpointIo`] when checkpoint files exist but none of
    /// them loads cleanly — resuming silently from scratch would discard
    /// real progress, so that decision is left to the caller.
    pub fn latest(&self) -> Result<Option<(u64, TrainState)>> {
        let generations = self.generations()?;
        if generations.is_empty() {
            return Ok(None);
        }
        let mut failures = Vec::new();
        for &g in generations.iter().rev() {
            let path = self.generation_path(g);
            match std::fs::File::open(&path).and_then(|f| load_train_state(io::BufReader::new(f))) {
                Ok(state) => return Ok(Some((g, state))),
                Err(e) => failures.push(format!("generation {g}: {e}")),
            }
        }
        Err(Error::CheckpointIo {
            detail: format!(
                "no loadable checkpoint generation in {} ({})",
                self.dir.display(),
                failures.join("; ")
            ),
        })
    }

    /// Delete committed generations beyond the newest `keep`, plus any
    /// stale `.tmp` files from interrupted writes. Best-effort: pruning
    /// failures never fail a save.
    fn prune(&self, keep: usize) {
        if let Ok(generations) = self.generations() {
            if generations.len() > keep {
                for &g in &generations[..generations.len() - keep] {
                    let _ = std::fs::remove_file(self.generation_path(g));
                }
            }
        }
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if name.to_str().is_some_and(|n| n.ends_with(".tmp")) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn read_checked<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> io::Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            invalid(format!("train state truncated while reading {what}"))
        } else {
            e
        }
    })
}

fn read_4<R: Read>(r: &mut R, what: &str) -> io::Result<[u8; 4]> {
    let mut buf = [0u8; 4];
    read_checked(r, &mut buf, what)?;
    Ok(buf)
}

fn read_u32<R: Read>(r: &mut R, what: &str) -> io::Result<u32> {
    Ok(u32::from_le_bytes(read_4(r, what)?))
}

fn read_u64<R: Read>(r: &mut R, what: &str) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    read_checked(r, &mut buf, what)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "amdgcnn-ckpt-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn sample_state(epochs: usize) -> TrainState {
        let mut params = ParamStore::new();
        params.register("w", Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32 * 0.1));
        params.register("b", Matrix::from_vec(1, 3, vec![0.5, -0.5, 1.5]));
        TrainState {
            epochs_done: epochs,
            seed: 42,
            params,
            opt: AdamState {
                t: epochs as u64 * 7,
                m: vec![Some(Matrix::full(2, 3, 0.01)), None],
                v: vec![Some(Matrix::full(2, 3, 0.02)), None],
            },
            history: (1..=epochs)
                .map(|e| EpochStats {
                    epoch: e,
                    loss: 1.0 / e as f32,
                    retries: usize::from(e == 2),
                })
                .collect(),
            recoveries: vec![RecoveryEvent {
                epoch: 2,
                attempt: 1,
                cause: DivergenceCause::NonFiniteLoss,
                lr_next: 1e-3,
            }],
        }
    }

    fn assert_states_equal(a: &TrainState, b: &TrainState) {
        assert_eq!(a.epochs_done, b.epochs_done);
        assert_eq!(a.seed, b.seed);
        assert_eq!(
            amdgcnn_tensor::io::params_digest(&a.params),
            amdgcnn_tensor::io::params_digest(&b.params)
        );
        assert_eq!(a.opt.t, b.opt.t);
        assert_eq!(a.opt.m.len(), b.opt.m.len());
        for (x, y) in a.opt.m.iter().zip(&b.opt.m) {
            assert_eq!(x.as_ref().map(|m| m.data()), y.as_ref().map(|m| m.data()));
        }
        assert_eq!(a.history.len(), b.history.len());
        assert_eq!(a.recoveries, b.recoveries);
    }

    #[test]
    fn train_state_roundtrip() {
        let state = sample_state(3);
        let mut buf = Vec::new();
        save_train_state(&state, &mut buf).expect("save");
        let loaded = load_train_state(buf.as_slice()).expect("load");
        assert_states_equal(&state, &loaded);
    }

    #[test]
    fn every_byte_flip_in_state_is_detected() {
        let state = sample_state(2);
        let mut buf = Vec::new();
        save_train_state(&state, &mut buf).expect("save");
        for pos in (0..buf.len()).step_by(3) {
            let mut corrupt = buf.clone();
            corrupt[pos] ^= 0x20;
            assert!(
                load_train_state(corrupt.as_slice()).is_err(),
                "flip at {pos} must be rejected"
            );
        }
    }

    #[test]
    fn truncation_anywhere_is_rejected() {
        let state = sample_state(2);
        let mut buf = Vec::new();
        save_train_state(&state, &mut buf).expect("save");
        for cut in (0..buf.len()).step_by(5) {
            assert!(
                load_train_state(&buf[..cut]).is_err(),
                "cut at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn checkpoint_dir_saves_and_loads_latest() {
        let dir = CheckpointDir::create(scratch_dir("latest")).expect("dir");
        dir.save(&sample_state(1), 4, None).expect("save 1");
        dir.save(&sample_state(2), 4, None).expect("save 2");
        let (g, state) = dir.latest().expect("latest").expect("present");
        assert_eq!(g, 2);
        assert_eq!(state.epochs_done, 2);
        assert_eq!(dir.generations().expect("list"), vec![1, 2]);
    }

    #[test]
    fn empty_dir_resumes_fresh() {
        let dir = CheckpointDir::create(scratch_dir("empty")).expect("dir");
        assert!(dir.latest().expect("latest").is_none());
    }

    #[test]
    fn torn_write_falls_back_to_previous_generation() {
        let dir = CheckpointDir::create(scratch_dir("torn")).expect("dir");
        dir.save(&sample_state(1), 4, None).expect("save 1");
        dir.save(&sample_state(2), 4, Some(DiskFault::TornWrite))
            .expect("torn save");
        let (g, state) = dir.latest().expect("latest").expect("present");
        assert_eq!(g, 1, "torn generation 2 must be skipped");
        assert_eq!(state.epochs_done, 1);
    }

    #[test]
    fn bit_flip_falls_back_to_previous_generation() {
        let dir = CheckpointDir::create(scratch_dir("flip")).expect("dir");
        dir.save(&sample_state(1), 4, None).expect("save 1");
        dir.save(&sample_state(2), 4, Some(DiskFault::BitFlip))
            .expect("flipped save");
        let (g, _) = dir.latest().expect("latest").expect("present");
        assert_eq!(g, 1, "bit-flipped generation 2 must be skipped");
    }

    #[test]
    fn partial_flush_leaves_previous_generation_live() {
        let dir = CheckpointDir::create(scratch_dir("flush")).expect("dir");
        dir.save(&sample_state(1), 4, None).expect("save 1");
        dir.save(&sample_state(2), 4, Some(DiskFault::PartialFlush))
            .expect("flushed save");
        let (g, _) = dir.latest().expect("latest").expect("present");
        assert_eq!(g, 1, "generation 2 never committed");
        // The stale tmp does not appear as a generation.
        assert_eq!(dir.generations().expect("list"), vec![1]);
    }

    #[test]
    fn all_generations_corrupt_is_a_typed_error() {
        let dir = CheckpointDir::create(scratch_dir("allbad")).expect("dir");
        dir.save(&sample_state(1), 4, Some(DiskFault::TornWrite))
            .expect("torn save");
        let err = dir.latest().expect_err("must fail");
        assert!(matches!(err, Error::CheckpointIo { .. }), "{err:?}");
    }

    #[test]
    fn prune_keeps_newest_generations() {
        let dir = CheckpointDir::create(scratch_dir("prune")).expect("dir");
        for e in 1..=5 {
            dir.save(&sample_state(e), 2, None).expect("save");
        }
        assert_eq!(dir.generations().expect("list"), vec![4, 5]);
    }
}
