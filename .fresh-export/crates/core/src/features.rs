//! SEAL node-attribute matrix construction (paper §III-B).
//!
//! The node attribute vector concatenates (i) a one-hot encoding of the
//! node type and (ii) a one-hot encoding of the (capped) DRNL label.
//! node2vec embeddings are supported as an optional third block — the paper
//! found they did not help on knowledge graphs and disabled them, which is
//! also our default.

use amdgcnn_graph::node2vec::NodeEmbeddings;
use amdgcnn_graph::EnclosingSubgraph;
use amdgcnn_tensor::Matrix;
use std::sync::Arc;

/// Feature-construction settings.
#[derive(Debug, Clone)]
pub struct FeatureConfig {
    /// Node-type count of the parent graph (one-hot width).
    pub num_node_types: usize,
    /// DRNL labels above this value are clamped to it; the one-hot block
    /// has width `max_drnl + 1` (label 0 = unreachable).
    pub max_drnl: u32,
    /// Optional node2vec table indexed by *original* node ids.
    pub node2vec: Option<Arc<NodeEmbeddings>>,
}

impl FeatureConfig {
    /// Default features for a graph with the given node-type count: type
    /// one-hot plus DRNL one-hot capped at 12 (covers all labels reachable
    /// with 2-hop subgraphs), no node2vec.
    pub fn for_graph(num_node_types: usize) -> Self {
        Self {
            num_node_types,
            max_drnl: 12,
            node2vec: None,
        }
    }

    /// Width of the produced feature vectors.
    pub fn dim(&self) -> usize {
        self.num_node_types
            + (self.max_drnl as usize + 1)
            + self.node2vec.as_ref().map_or(0, |e| e.dims)
    }
}

/// Build the `[N, dim]` node attribute matrix for a subgraph.
pub fn build_node_features(sub: &EnclosingSubgraph, cfg: &FeatureConfig) -> Matrix {
    let n = sub.num_nodes();
    let dim = cfg.dim();
    let drnl_width = cfg.max_drnl as usize + 1;
    let mut out = Matrix::zeros(n, dim);
    for i in 0..n {
        let row = out.row_mut(i);
        let t = sub.node_types[i] as usize;
        debug_assert!(
            t < cfg.num_node_types,
            "node type {t} exceeds configured width"
        );
        row[t] = 1.0;
        let label = sub.drnl[i].min(cfg.max_drnl) as usize;
        row[cfg.num_node_types + label] = 1.0;
        if let Some(emb) = &cfg.node2vec {
            let vec = emb.get(sub.nodes[i]);
            row[cfg.num_node_types + drnl_width..].copy_from_slice(vec);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdgcnn_graph::{GraphBuilder, SubgraphConfig};

    fn sample_subgraph() -> EnclosingSubgraph {
        let mut b = GraphBuilder::with_node_types(vec![0, 1, 2, 1]);
        b.add_edge(0, 2, 0);
        b.add_edge(2, 1, 1);
        b.add_edge(1, 3, 0);
        let g = b.build();
        amdgcnn_graph::khop::extract_enclosing_subgraph(&g, 0, 1, &SubgraphConfig::default())
    }

    #[test]
    fn dims_add_up() {
        let cfg = FeatureConfig::for_graph(3);
        assert_eq!(cfg.dim(), 3 + 13);
        let sub = sample_subgraph();
        let m = build_node_features(&sub, &cfg);
        assert_eq!(m.shape(), (sub.num_nodes(), cfg.dim()));
    }

    #[test]
    fn rows_are_two_hot() {
        let cfg = FeatureConfig::for_graph(3);
        let sub = sample_subgraph();
        let m = build_node_features(&sub, &cfg);
        for r in 0..m.rows() {
            let ones = m.row(r).iter().filter(|&&v| v == 1.0).count();
            assert_eq!(ones, 2, "row {r}: type one-hot + DRNL one-hot");
            assert_eq!(m.row(r).iter().sum::<f32>(), 2.0);
        }
    }

    #[test]
    fn target_nodes_encode_label_one() {
        let cfg = FeatureConfig::for_graph(3);
        let sub = sample_subgraph();
        let m = build_node_features(&sub, &cfg);
        // Locals 0 and 1 are the targets: DRNL block position 1 set.
        for target in 0..2 {
            assert_eq!(m.get(target, cfg.num_node_types + 1), 1.0);
        }
    }

    #[test]
    fn node_type_block_matches_types() {
        let cfg = FeatureConfig::for_graph(3);
        let sub = sample_subgraph();
        let m = build_node_features(&sub, &cfg);
        for (i, &t) in sub.node_types.iter().enumerate() {
            assert_eq!(m.get(i, t as usize), 1.0, "local {i}");
        }
    }

    #[test]
    fn drnl_labels_are_capped() {
        let cfg = FeatureConfig {
            num_node_types: 3,
            max_drnl: 1,
            node2vec: None,
        };
        let sub = sample_subgraph();
        // Labels above the cap (targets are 1, the path node gets label 2+)
        // must clamp into the last DRNL slot, keeping rows one-hot.
        assert!(
            sub.drnl.iter().any(|&l| l > cfg.max_drnl),
            "need a label above the cap"
        );
        let m = build_node_features(&sub, &cfg);
        for r in 0..m.rows() {
            let drnl_block = &m.row(r)[3..];
            assert_eq!(drnl_block.len(), 2);
            assert_eq!(drnl_block.iter().filter(|&&v| v == 1.0).count(), 1);
        }
    }
}
