//! The (AM-)DGCNN model assembly (paper §III-C, Fig. 2).
//!
//! Both models share the DGCNN skeleton of Zhang et al. (2018):
//!
//! 1. a stack of graph message-passing layers (tanh between layers), the
//!    last of which produces a single channel used as the sorting key;
//! 2. concatenation of every layer's output (`[N, C_total]`);
//! 3. SortPooling to a fixed `k` rows;
//! 4. a 1-D convolution read-out: Conv(1→c1, kernel=stride=C_total) →
//!    MaxPool(2) → Conv(c1→c2, kernel 5) with tanh (tanh rather than ReLU:
//!    the read-out sits behind SortPooling whose early-training gradients
//!    are weak, and a ReLU read-out reliably dies into a constant
//!    prior-predictor before the signal arrives);
//! 5. a dense classifier with dropout.
//!
//! *Vanilla DGCNN* instantiates step 1 with [`GcnConv`] (edge-blind).
//! *AM-DGCNN* replaces it with [`GatConv`] — attention over neighbors with
//! the edge attributes feeding the attention logits (the paper's
//! contribution).
//!
//! The stack is a `Vec<Box<dyn GraphLayer>>` over the shared
//! [`MessageGraph`] operand, so model assembly and the forward pass are
//! family-agnostic, and [`DgcnnModel::forward_batched`] can pack many
//! subgraphs into one [`BlockDiagGraph`] and run the message passing as a
//! handful of large sparse kernels — reproducing the per-sample forward
//! bit-for-bit (all kernels reduce per destination over block-local
//! messages).

use crate::sample::PreparedSample;
use crate::train::LinkModel;
use amdgcnn_nn::{
    Activation, BlockDiagGraph, Conv1dLayer, GatConfig, GatConv, GcnConv, GraphLayer, MessageGraph,
    Mlp, RgcnConfig, RgcnConv,
};
use amdgcnn_tensor::{Conv1dSpec, Matrix, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use std::sync::Arc;

/// Which message-passing family the DGCNN skeleton uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum GnnKind {
    /// Graph convolutions (vanilla DGCNN — cannot see edge attributes).
    Gcn,
    /// Graph attention (AM-DGCNN).
    Gat {
        /// Feed edge attributes into the attention logits. Turning this
        /// off isolates the attention-only ablation (bench A1).
        edge_attrs: bool,
        /// Attention heads per hidden layer.
        heads: usize,
    },
    /// Relational GCN (Schlichtkrull et al., 2018) — per-relation weights
    /// with basis decomposition; an extension baseline that consumes
    /// relation *identities* rather than attribute vectors.
    Rgcn {
        /// Basis matrices shared across relations.
        num_bases: usize,
    },
}

impl GnnKind {
    /// AM-DGCNN with edge attributes and a single head (the paper's
    /// configuration).
    pub fn am_dgcnn() -> Self {
        GnnKind::Gat {
            edge_attrs: true,
            heads: 1,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            GnnKind::Gcn => "vanilla-dgcnn",
            GnnKind::Gat {
                edge_attrs: true, ..
            } => "am-dgcnn",
            GnnKind::Gat {
                edge_attrs: false, ..
            } => "gat-no-edge-attrs",
            GnnKind::Rgcn { .. } => "rgcn-dgcnn",
        }
    }
}

/// Model hyperparameters. `hidden_dim` and `sort_k` are the Table I search
/// dimensions; the rest are DGCNN architecture constants.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ModelConfig {
    /// Message-passing family.
    pub gnn: GnnKind,
    /// Node-feature input width.
    pub node_feat_dim: usize,
    /// Edge-attribute width (0 = none available).
    pub edge_attr_dim: usize,
    /// Width of each hidden message-passing layer (Table I: 16–128).
    pub hidden_dim: usize,
    /// Number of hidden message-passing layers (before the 1-channel sort
    /// layer). DGCNN uses 3.
    pub num_layers: usize,
    /// SortPooling `k` (Table I: 5–150).
    pub sort_k: usize,
    /// First read-out convolution channels.
    pub conv1_channels: usize,
    /// Second read-out convolution channels.
    pub conv2_channels: usize,
    /// Second read-out convolution kernel (shrunk automatically when the
    /// pooled sequence is shorter).
    pub conv2_kernel: usize,
    /// Dense classifier hidden width.
    pub dense_dim: usize,
    /// Classifier dropout probability.
    pub dropout: f32,
    /// Output class count.
    pub num_classes: usize,
    /// Relation-type count of the dataset (required by [`GnnKind::Rgcn`];
    /// ignored by the other variants).
    pub num_relations: usize,
}

impl ModelConfig {
    /// DGCNN defaults for the given input/output sizes (hidden 32, three
    /// hidden layers, k = 30 — the paper's starting point before tuning).
    pub fn dgcnn_defaults(
        gnn: GnnKind,
        node_feat_dim: usize,
        edge_attr_dim: usize,
        num_classes: usize,
    ) -> Self {
        Self {
            gnn,
            node_feat_dim,
            edge_attr_dim,
            hidden_dim: 32,
            num_layers: 3,
            sort_k: 30,
            conv1_channels: 16,
            conv2_channels: 32,
            conv2_kernel: 5,
            dense_dim: 128,
            dropout: 0.5,
            num_classes,
            num_relations: 0,
        }
    }

    /// Per-layer effective output widths of the message-passing stack.
    fn layer_widths(&self) -> Vec<usize> {
        let heads = match self.gnn {
            GnnKind::Gcn | GnnKind::Rgcn { .. } => 1,
            GnnKind::Gat { heads, .. } => heads,
        };
        let mut w: Vec<usize> = (0..self.num_layers)
            .map(|_| self.hidden_dim * heads)
            .collect();
        w.push(1); // sort-key layer
        w
    }

    /// Total concatenated channel count fed into SortPooling.
    pub fn total_channels(&self) -> usize {
        self.layer_widths().iter().sum()
    }
}

/// A complete (AM-)DGCNN model: parameters registered in a [`ParamStore`],
/// forward pass producing `[1, num_classes]` logits per subgraph.
pub struct DgcnnModel {
    /// The configuration the model was built with.
    pub cfg: ModelConfig,
    /// Message-passing stack behind the unified [`GraphLayer`] trait.
    layers: Vec<Box<dyn GraphLayer>>,
    conv1: Conv1dLayer,
    conv2: Conv1dLayer,
    mlp: Mlp,
}

impl DgcnnModel {
    /// Register all parameters for a new model.
    ///
    /// # Panics
    /// Panics when `sort_k < 4` (the read-out needs at least two pooled
    /// positions) or when a GAT model with `edge_attrs` is configured with
    /// `edge_attr_dim == 0`.
    pub fn new(cfg: ModelConfig, ps: &mut ParamStore, rng: &mut StdRng) -> Self {
        assert!(
            cfg.sort_k >= 4,
            "sort_k {} too small for the conv read-out",
            cfg.sort_k
        );
        if let GnnKind::Gat {
            edge_attrs: true, ..
        } = cfg.gnn
        {
            assert!(
                cfg.edge_attr_dim > 0,
                "AM-DGCNN with edge attributes needs edge_attr_dim > 0"
            );
        }

        // Message-passing stack: hidden layers then the 1-channel sort layer.
        let mut layers: Vec<Box<dyn GraphLayer>> = Vec::with_capacity(cfg.num_layers + 1);
        match cfg.gnn {
            GnnKind::Gcn => {
                let mut in_dim = cfg.node_feat_dim;
                for i in 0..cfg.num_layers {
                    layers.push(Box::new(GcnConv::new(
                        &format!("gcn{i}"),
                        in_dim,
                        cfg.hidden_dim,
                        ps,
                        rng,
                    )));
                    in_dim = cfg.hidden_dim;
                }
                layers.push(Box::new(GcnConv::new("gcn_sort", in_dim, 1, ps, rng)));
            }
            GnnKind::Gat { edge_attrs, heads } => {
                let edge_dim = if edge_attrs { cfg.edge_attr_dim } else { 0 };
                let mut in_dim = cfg.node_feat_dim;
                for i in 0..cfg.num_layers {
                    let gcfg = GatConfig {
                        in_dim,
                        out_dim: cfg.hidden_dim,
                        edge_dim,
                        heads,
                        concat: true,
                        negative_slope: 0.2,
                    };
                    layers.push(Box::new(GatConv::new(&format!("gat{i}"), gcfg, ps, rng)));
                    in_dim = gcfg.output_width();
                }
                let sort_cfg = GatConfig {
                    in_dim,
                    out_dim: 1,
                    edge_dim,
                    heads,
                    concat: false,
                    negative_slope: 0.2,
                };
                layers.push(Box::new(GatConv::new("gat_sort", sort_cfg, ps, rng)));
            }
            GnnKind::Rgcn { num_bases } => {
                assert!(
                    cfg.num_relations > 0,
                    "R-GCN variant needs num_relations set from the dataset"
                );
                let mut in_dim = cfg.node_feat_dim;
                for i in 0..cfg.num_layers {
                    layers.push(Box::new(RgcnConv::new(
                        &format!("rgcn{i}"),
                        RgcnConfig {
                            in_dim,
                            out_dim: cfg.hidden_dim,
                            num_relations: cfg.num_relations,
                            num_bases,
                        },
                        ps,
                        rng,
                    )));
                    in_dim = cfg.hidden_dim;
                }
                layers.push(Box::new(RgcnConv::new(
                    "rgcn_sort",
                    RgcnConfig {
                        in_dim,
                        out_dim: 1,
                        num_relations: cfg.num_relations,
                        num_bases,
                    },
                    ps,
                    rng,
                )));
            }
        }

        let c_total = cfg.total_channels();
        let conv1 = Conv1dLayer::new(
            "conv1",
            Conv1dSpec {
                in_channels: 1,
                out_channels: cfg.conv1_channels,
                kernel: c_total,
                stride: c_total,
            },
            ps,
            rng,
        );
        let pooled_len = cfg.sort_k / 2;
        let kernel2 = cfg.conv2_kernel.min(pooled_len);
        let conv2 = Conv1dLayer::new(
            "conv2",
            Conv1dSpec {
                in_channels: cfg.conv1_channels,
                out_channels: cfg.conv2_channels,
                kernel: kernel2,
                stride: 1,
            },
            ps,
            rng,
        );
        let conv2_out_len = pooled_len - kernel2 + 1;
        let flat = cfg.conv2_channels * conv2_out_len;
        let mlp = Mlp::new(
            "classifier",
            &[flat, cfg.dense_dim, cfg.num_classes],
            Activation::Relu,
            Some(cfg.dropout),
            ps,
            rng,
        );
        Self {
            cfg,
            layers,
            conv1,
            conv2,
            mlp,
        }
    }

    /// Run the message-passing stack (tanh between layers) and concatenate
    /// every layer's output — DGCNN's `[N, C_total]` representation.
    fn gnn_concat(&self, tape: &mut Tape, ps: &ParamStore, graph: &MessageGraph, x: Var) -> Var {
        let mut outputs: Vec<Var> = Vec::with_capacity(self.layers.len());
        let mut h = x;
        for layer in &self.layers {
            let z = layer.forward(tape, ps, graph, h);
            h = tape.tanh(z);
            outputs.push(h);
        }
        if outputs.len() == 1 {
            outputs[0]
        } else {
            tape.concat_cols(&outputs)
        }
    }

    /// SortPooling + 1-D convolution read-out + dense classifier over one
    /// subgraph's `[N, C_total]` concatenated representation.
    fn readout(
        &self,
        tape: &mut Tape,
        ps: &ParamStore,
        cat: Var,
        dropout_rng: Option<&mut StdRng>,
    ) -> Var {
        let c_total = self.cfg.total_channels();
        debug_assert_eq!(tape.shape(cat).1, c_total);
        let pooled = tape.sort_pool(cat, self.cfg.sort_k);
        let flat = tape.reshape(pooled, 1, self.cfg.sort_k * c_total);
        let c1 = self.conv1.forward(tape, ps, flat);
        let c1 = tape.tanh(c1);
        let p1 = tape.max_pool1d(c1, 2);
        let c2 = self.conv2.forward(tape, ps, p1);
        let c2 = tape.tanh(c2);
        let (ch, len) = tape.shape(c2);
        let flat2 = tape.reshape(c2, 1, ch * len);
        self.mlp.forward(tape, ps, flat2, dropout_rng)
    }

    /// Forward pass over one prepared subgraph. Returns `[1, num_classes]`
    /// logits. Pass `dropout_rng` during training; `None` for inference.
    pub fn forward(
        &self,
        tape: &mut Tape,
        ps: &ParamStore,
        sample: &PreparedSample,
        dropout_rng: Option<&mut StdRng>,
    ) -> Var {
        let x = tape.leaf(sample.features.clone());
        let cat = self.gnn_concat(tape, ps, &sample.graph, x);
        self.readout(tape, ps, cat, dropout_rng)
    }

    /// Batched forward pass: packs the samples' graphs into one
    /// [`BlockDiagGraph`], runs the message-passing stack once over the
    /// packed graph, then applies the per-sample read-out to each block's
    /// node rows. Returns one `[1, num_classes]` logit row per sample, in
    /// order.
    ///
    /// Because every sparse kernel reduces per destination over that
    /// destination's (block-local) messages in the same order as the
    /// per-sample graph, and the dense ops are row-independent, the batched
    /// logits are **bit-identical** to [`forward`](Self::forward) run
    /// sample by sample. `dropout_rngs`, when given, must hold one RNG per
    /// sample (the same streams the per-sample path would use).
    pub fn forward_batched(
        &self,
        tape: &mut Tape,
        ps: &ParamStore,
        samples: &[&PreparedSample],
        mut dropout_rngs: Option<&mut [StdRng]>,
    ) -> Vec<Var> {
        if samples.is_empty() {
            return Vec::new();
        }
        if let Some(rngs) = dropout_rngs.as_ref() {
            assert_eq!(rngs.len(), samples.len(), "one dropout RNG per sample");
        }
        let graphs: Vec<&MessageGraph> = samples.iter().map(|s| &s.graph).collect();
        let packed = BlockDiagGraph::pack(&graphs);
        let feats: Vec<&Matrix> = samples.iter().map(|s| &s.features).collect();
        let x = tape.leaf(Matrix::concat_rows(&feats));
        let cat = self.gnn_concat(tape, ps, &packed.graph, x);
        (0..samples.len())
            .map(|k| {
                let idx: Vec<usize> = packed.node_range(k).collect();
                let local = tape.gather_rows(cat, Arc::new(idx));
                let rng = dropout_rngs.as_mut().map(|r| &mut r[k]);
                self.readout(tape, ps, local, rng)
            })
            .collect()
    }
}

impl LinkModel for DgcnnModel {
    fn forward_sample(
        &self,
        tape: &mut Tape,
        ps: &ParamStore,
        sample: &PreparedSample,
        dropout_rng: Option<&mut StdRng>,
    ) -> Var {
        self.forward(tape, ps, sample, dropout_rng)
    }

    fn forward_batch(
        &self,
        tape: &mut Tape,
        ps: &ParamStore,
        samples: &[&PreparedSample],
        dropout_rngs: Option<&mut [StdRng]>,
    ) -> Vec<Var> {
        self.forward_batched(tape, ps, samples, dropout_rngs)
    }

    fn num_classes(&self) -> usize {
        self.cfg.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureConfig;
    use crate::sample::{prepare_batch, prepare_sample};
    use amdgcnn_data::{biokg_like, cora_like, wn18_like, BioKgConfig, CoraConfig, Wn18Config};
    use rand::SeedableRng;

    fn build(
        ds: &amdgcnn_data::Dataset,
        gnn: GnnKind,
        seed: u64,
    ) -> (DgcnnModel, ParamStore, FeatureConfig) {
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let mut cfg =
            ModelConfig::dgcnn_defaults(gnn, fcfg.dim(), ds.edge_attrs.dim(), ds.num_classes);
        cfg.hidden_dim = 8;
        cfg.sort_k = 12;
        cfg.dense_dim = 16;
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let model = DgcnnModel::new(cfg, &mut ps, &mut rng);
        (model, ps, fcfg)
    }

    #[test]
    fn vanilla_forward_shapes() {
        let ds = cora_like(&CoraConfig::tiny());
        let (model, ps, fcfg) = build(&ds, GnnKind::Gcn, 0);
        let s = prepare_sample(&ds, &ds.train[0], &fcfg);
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &ps, &s, None);
        assert_eq!(tape.shape(logits), (1, 2));
        assert!(tape.value(logits).all_finite());
    }

    #[test]
    fn am_dgcnn_forward_shapes() {
        let ds = wn18_like(&Wn18Config::tiny());
        let (model, ps, fcfg) = build(&ds, GnnKind::am_dgcnn(), 1);
        let s = prepare_sample(&ds, &ds.train[0], &fcfg);
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &ps, &s, None);
        assert_eq!(tape.shape(logits), (1, 18));
        assert!(tape.value(logits).all_finite());
    }

    #[test]
    fn multi_head_gat_works() {
        let ds = biokg_like(&BioKgConfig::tiny());
        let (model, ps, fcfg) = build(
            &ds,
            GnnKind::Gat {
                edge_attrs: true,
                heads: 2,
            },
            2,
        );
        let s = prepare_sample(&ds, &ds.train[0], &fcfg);
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &ps, &s, None);
        assert_eq!(tape.shape(logits), (1, 7));
    }

    #[test]
    fn rgcn_variant_forward_and_learning_signal() {
        let ds = wn18_like(&Wn18Config::tiny());
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let mut cfg = ModelConfig::dgcnn_defaults(
            GnnKind::Rgcn { num_bases: 4 },
            fcfg.dim(),
            ds.edge_attrs.dim(),
            ds.num_classes,
        );
        cfg.hidden_dim = 8;
        cfg.sort_k = 12;
        cfg.dense_dim = 16;
        cfg.num_relations = ds.graph.num_edge_types();
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(21);
        let model = DgcnnModel::new(cfg, &mut ps, &mut rng);
        let s = prepare_sample(&ds, &ds.train[0], &fcfg);
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &ps, &s, None);
        assert_eq!(tape.shape(logits), (1, ds.num_classes));
        assert!(tape.value(logits).all_finite());
        // Gradients flow to the relational parameters.
        let loss = tape.softmax_cross_entropy(logits, Arc::new(vec![s.label]));
        let grads = tape.backward(loss, ps.len());
        assert!(grads.all_finite());
        let touched = (0..ps.len())
            .filter(|&i| grads.get(amdgcnn_tensor::ParamId(i)).is_some())
            .count();
        assert!(
            touched > ps.len() / 2,
            "only {touched}/{} params touched",
            ps.len()
        );
    }

    #[test]
    #[should_panic(expected = "num_relations")]
    fn rgcn_requires_relation_count() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = ModelConfig::dgcnn_defaults(GnnKind::Rgcn { num_bases: 2 }, 10, 0, 3);
        let _ = DgcnnModel::new(cfg, &mut ps, &mut rng);
    }

    #[test]
    fn gat_without_edge_attrs_runs_on_cora() {
        let ds = cora_like(&CoraConfig::tiny());
        let (model, ps, fcfg) = build(
            &ds,
            GnnKind::Gat {
                edge_attrs: false,
                heads: 1,
            },
            3,
        );
        let s = prepare_sample(&ds, &ds.train[0], &fcfg);
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &ps, &s, None);
        assert_eq!(tape.shape(logits), (1, 2));
    }

    #[test]
    fn gradients_flow_to_all_touched_params() {
        let ds = wn18_like(&Wn18Config::tiny());
        let (model, ps, fcfg) = build(&ds, GnnKind::am_dgcnn(), 4);
        let s = prepare_sample(&ds, &ds.train[0], &fcfg);
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &ps, &s, None);
        let loss = tape.softmax_cross_entropy(logits, Arc::new(vec![s.label]));
        let grads = tape.backward(loss, ps.len());
        let with_grad = (0..ps.len())
            .filter(|&i| grads.get(amdgcnn_tensor::ParamId(i)).is_some())
            .count();
        // Every parameter participates in the forward pass (conv2 may lose
        // gradient through relu/maxpool dead zones only elementwise, the
        // matrices still receive entries).
        assert!(
            with_grad >= ps.len() - 1,
            "only {with_grad}/{} params received gradients",
            ps.len()
        );
        assert!(grads.all_finite());
    }

    #[test]
    fn small_sort_k_shrinks_conv2() {
        let ds = cora_like(&CoraConfig::tiny());
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let mut cfg = ModelConfig::dgcnn_defaults(GnnKind::Gcn, fcfg.dim(), 0, 2);
        cfg.sort_k = 5; // Table I minimum: pooled length 2 < kernel 5
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let model = DgcnnModel::new(cfg, &mut ps, &mut rng);
        let s = prepare_sample(&ds, &ds.train[0], &fcfg);
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, &ps, &s, None);
        assert_eq!(tape.shape(logits), (1, 2));
    }

    #[test]
    fn deterministic_construction_and_forward() {
        let ds = wn18_like(&Wn18Config::tiny());
        let run = || {
            let (model, ps, fcfg) = build(&ds, GnnKind::am_dgcnn(), 7);
            let s = prepare_sample(&ds, &ds.train[0], &fcfg);
            let mut tape = Tape::new();
            let logits = model.forward(&mut tape, &ps, &s, None);
            tape.value(logits).clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn dropout_changes_training_forward_only() {
        let ds = cora_like(&CoraConfig::tiny());
        let (model, ps, fcfg) = build(&ds, GnnKind::Gcn, 8);
        let s = prepare_sample(&ds, &ds.train[0], &fcfg);
        let infer = |_: ()| {
            let mut tape = Tape::new();
            let l = model.forward(&mut tape, &ps, &s, None);
            tape.value(l).clone()
        };
        assert_eq!(infer(()), infer(()), "inference is deterministic");
        let mut rng = StdRng::seed_from_u64(9);
        let mut tape = Tape::new();
        let l = model.forward(&mut tape, &ps, &s, Some(&mut rng));
        // Training-mode output generally differs from inference output.
        let diff = tape.value(l).max_abs_diff(&infer(()));
        assert!(diff > 0.0, "dropout should perturb the training forward");
    }

    #[test]
    #[should_panic(expected = "edge_attr_dim > 0")]
    fn am_dgcnn_requires_edge_dim() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = ModelConfig::dgcnn_defaults(GnnKind::am_dgcnn(), 10, 0, 3);
        let _ = DgcnnModel::new(cfg, &mut ps, &mut rng);
    }

    #[test]
    fn total_channels_accounts_for_heads() {
        let cfg = ModelConfig {
            gnn: GnnKind::Gat {
                edge_attrs: false,
                heads: 2,
            },
            ..ModelConfig::dgcnn_defaults(GnnKind::Gcn, 4, 0, 2)
        };
        // 3 hidden layers x 32 x 2 heads + 1 sort channel.
        assert_eq!(cfg.total_channels(), 3 * 64 + 1);
        let m = Matrix::zeros(1, 1);
        let _ = m; // silence unused warnings in some toolchains
    }

    #[test]
    fn batched_forward_is_bit_identical_per_kind() {
        let ds = wn18_like(&Wn18Config::tiny());
        for (seed, gnn) in [
            (10, GnnKind::Gcn),
            (11, GnnKind::am_dgcnn()),
            (12, GnnKind::Rgcn { num_bases: 3 }),
        ] {
            let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
            let mut cfg =
                ModelConfig::dgcnn_defaults(gnn, fcfg.dim(), ds.edge_attrs.dim(), ds.num_classes);
            cfg.hidden_dim = 8;
            cfg.sort_k = 12;
            cfg.dense_dim = 16;
            cfg.num_relations = ds.graph.num_edge_types();
            let mut ps = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(seed);
            let model = DgcnnModel::new(cfg, &mut ps, &mut rng);
            let samples = prepare_batch(&ds, &ds.train[..6], &fcfg);
            let refs: Vec<&PreparedSample> = samples.iter().collect();

            let mut batch_tape = Tape::new();
            let batched = model.forward_batched(&mut batch_tape, &ps, &refs, None);
            assert_eq!(batched.len(), samples.len());
            for (k, s) in samples.iter().enumerate() {
                let mut tape = Tape::new();
                let single = model.forward(&mut tape, &ps, s, None);
                assert_eq!(
                    batch_tape.value(batched[k]),
                    tape.value(single),
                    "{} sample {k} diverged from the per-sample forward",
                    gnn.name()
                );
            }
        }
    }

    #[test]
    fn batched_forward_matches_training_mode_dropout() {
        let ds = wn18_like(&Wn18Config::tiny());
        let (model, ps, fcfg) = build(&ds, GnnKind::am_dgcnn(), 13);
        let samples = prepare_batch(&ds, &ds.train[..4], &fcfg);
        let refs: Vec<&PreparedSample> = samples.iter().collect();
        let seed_rngs = || -> Vec<StdRng> {
            (0..samples.len())
                .map(|i| StdRng::seed_from_u64(900 + i as u64))
                .collect()
        };

        let mut rngs = seed_rngs();
        let mut batch_tape = Tape::new();
        let batched = model.forward_batched(&mut batch_tape, &ps, &refs, Some(&mut rngs));
        let mut single_rngs = seed_rngs();
        for (k, s) in samples.iter().enumerate() {
            let mut tape = Tape::new();
            let single = model.forward(&mut tape, &ps, s, Some(&mut single_rngs[k]));
            assert_eq!(
                batch_tape.value(batched[k]),
                tape.value(single),
                "sample {k}: batched training forward must replay the same \
                 per-sample dropout stream"
            );
        }
    }
}
