//! Weisfeiler-Lehman Neural Machine (Zhang & Chen, 2017) — the
//! supervised-heuristic-learning *predecessor* the paper reviews in §VI-B,
//! implemented as a baseline.
//!
//! WLNM encodes an enclosing subgraph as a **fixed-size adjacency
//! vector**: vertices are ranked by Weisfeiler-Lehman refinement seeded
//! from their distance-based labels, the subgraph is truncated/zero-padded
//! to `k` vertices, and the upper triangle of the reordered adjacency
//! matrix (minus the target-link entry) is flattened and fed to a plain
//! MLP. Its §VI-B drawbacks are visible by construction: truncation loses
//! structure, and neither explicit node features nor edge attributes fit
//! the representation.

use crate::sample::PreparedSample;
use crate::train::LinkModel;
use amdgcnn_graph::wl::wlnm_order;
use amdgcnn_graph::GraphBuilder;
use amdgcnn_nn::{Activation, Mlp};
use amdgcnn_tensor::{Matrix, ParamStore, Tape, Var};
use rand::rngs::StdRng;

/// WLNM hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct WlnmConfig {
    /// Fixed vertex budget `k` (subgraphs are truncated/padded to this).
    pub k: usize,
    /// Hidden widths of the MLP.
    pub hidden: [usize; 2],
    /// Dropout probability in the MLP.
    pub dropout: f32,
    /// Output class count.
    pub num_classes: usize,
    /// WL refinement rounds.
    pub wl_rounds: usize,
}

impl WlnmConfig {
    /// The original paper's shape: k = 10, MLP 32-16 (scaled to the class
    /// count here).
    pub fn defaults(num_classes: usize) -> Self {
        Self {
            k: 10,
            hidden: [64, 32],
            dropout: 0.3,
            num_classes,
            wl_rounds: 4,
        }
    }

    /// Length of the flattened upper-triangle input (excluding the (0,1)
    /// target entry).
    pub fn input_dim(&self) -> usize {
        self.k * (self.k - 1) / 2 - 1
    }
}

/// The WLNM baseline model.
pub struct WlnmModel {
    /// Configuration.
    pub cfg: WlnmConfig,
    mlp: Mlp,
}

impl WlnmModel {
    /// Register parameters.
    ///
    /// # Panics
    /// Panics when `k < 3` (no informative adjacency entries remain).
    pub fn new(cfg: WlnmConfig, ps: &mut ParamStore, rng: &mut StdRng) -> Self {
        assert!(cfg.k >= 3, "WLNM needs a vertex budget of at least 3");
        let dims = [
            cfg.input_dim(),
            cfg.hidden[0],
            cfg.hidden[1],
            cfg.num_classes,
        ];
        let mlp = Mlp::new("wlnm", &dims, Activation::Relu, Some(cfg.dropout), ps, rng);
        Self { cfg, mlp }
    }

    /// Encode a prepared sample as the WLNM adjacency vector.
    ///
    /// Vertex order: WL refinement seeded with the DRNL labels (targets
    /// carry the distinctive label 1 and sort first; the unreachable label
    /// 0 is remapped past every finite label so padding-like vertices sort
    /// last).
    pub fn encode(&self, sample: &PreparedSample) -> Matrix {
        let n = sample.num_nodes;
        // Rebuild the local graph for WL refinement.
        let mut b = GraphBuilder::new(n);
        for e in &sample.edges {
            b.add_edge(e.u, e.v, 0);
        }
        let local = b.build();
        let initial: Vec<u64> = sample
            .drnl
            .iter()
            .map(|&l| if l == 0 { u64::MAX } else { l as u64 })
            .collect();
        let order = wlnm_order(&local, &initial, self.cfg.wl_rounds);

        // Position of each original vertex in the truncated ordering.
        let k = self.cfg.k;
        let mut pos = vec![usize::MAX; n];
        for (rank, &v) in order.iter().take(k).enumerate() {
            pos[v] = rank;
        }
        // Upper-triangle adjacency over the first k ranked vertices,
        // skipping (0,1) — the entry the model is asked to predict.
        let mut vec = vec![0.0f32; self.cfg.input_dim()];
        let flat_index = |i: usize, j: usize| -> Option<usize> {
            // Index into the upper triangle enumerated row-major, with the
            // (0,1) slot removed.
            debug_assert!(i < j);
            if i == 0 && j == 1 {
                return None;
            }
            let raw = i * (2 * k - i - 1) / 2 + (j - i - 1);
            Some(raw - 1) // every index after (0,1) shifts down by one
        };
        for e in &sample.edges {
            let (pu, pv) = (pos[e.u as usize], pos[e.v as usize]);
            if pu == usize::MAX || pv == usize::MAX || pu == pv {
                continue;
            }
            let (i, j) = if pu < pv { (pu, pv) } else { (pv, pu) };
            if let Some(idx) = flat_index(i, j) {
                vec[idx] = 1.0;
            }
        }
        Matrix::from_vec(1, self.cfg.input_dim(), vec)
    }
}

impl LinkModel for WlnmModel {
    fn forward_sample(
        &self,
        tape: &mut Tape,
        ps: &ParamStore,
        sample: &PreparedSample,
        dropout_rng: Option<&mut StdRng>,
    ) -> Var {
        let x = tape.leaf(self.encode(sample));
        self.mlp.forward(tape, ps, x, dropout_rng)
    }

    fn num_classes(&self) -> usize {
        self.cfg.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureConfig;
    use crate::pipeline::evaluate_model;
    use crate::sample::prepare_batch;
    use crate::train::{TrainConfig, Trainer};
    use amdgcnn_data::{cora_like, CoraConfig};
    use rand::SeedableRng;

    fn setup() -> (
        WlnmModel,
        ParamStore,
        Vec<crate::PreparedSample>,
        Vec<crate::PreparedSample>,
    ) {
        let ds = cora_like(&CoraConfig::tiny());
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = WlnmModel::new(WlnmConfig::defaults(2), &mut ps, &mut rng);
        let train = prepare_batch(&ds, &ds.train[..200.min(ds.train.len())], &fcfg);
        let test = prepare_batch(&ds, &ds.test[..100.min(ds.test.len())], &fcfg);
        (model, ps, train, test)
    }

    #[test]
    fn input_dim_formula() {
        let cfg = WlnmConfig::defaults(2);
        assert_eq!(cfg.input_dim(), 10 * 9 / 2 - 1);
        let small = WlnmConfig { k: 3, ..cfg };
        assert_eq!(small.input_dim(), 2); // (0,2), (1,2)
    }

    #[test]
    fn encoding_is_binary_and_sized() {
        let (model, _, train, _) = setup();
        for s in train.iter().take(20) {
            let enc = model.encode(s);
            assert_eq!(enc.shape(), (1, model.cfg.input_dim()));
            assert!(enc.data().iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn target_link_entry_is_excluded() {
        // Even for positive samples (an actual edge), the encoding never
        // exposes a (0,1) slot — it is structurally removed. We check that
        // two samples differing only in target-link presence encode
        // identically if their remaining structure matches trivially:
        // at minimum the vector length excludes that entry.
        let (model, _, train, _) = setup();
        let enc = model.encode(&train[0]);
        assert_eq!(enc.len(), model.cfg.k * (model.cfg.k - 1) / 2 - 1);
    }

    #[test]
    fn wlnm_learns_cora_link_prediction_above_chance() {
        let (model, mut ps, train, test) = setup();
        let mut trainer = Trainer::new(TrainConfig {
            lr: 3e-3,
            seed: 1,
            ..Default::default()
        });
        trainer.train(&model, &mut ps, &train, 12).expect("train");
        let m = evaluate_model(&model, &ps, &test);
        assert!(
            m.auc > 0.6,
            "WLNM should beat chance on clustered links, got {}",
            m.auc
        );
    }

    #[test]
    fn forward_is_deterministic_in_inference() {
        let (model, ps, train, _) = setup();
        let run = || {
            let mut tape = Tape::new();
            let v = model.forward_sample(&mut tape, &ps, &train[0], None);
            tape.value(v).clone()
        };
        assert_eq!(run(), run());
    }
}
