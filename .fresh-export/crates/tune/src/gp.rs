//! Gaussian-process regression surrogate over the unit hypercube
//! (RBF kernel, exact inference via Cholesky) — the model underneath the
//! Centralized Bayesian Optimization strategy the paper selects in
//! DeepHyper (§III-D).

use amdgcnn_tensor::{linalg, Matrix};

/// GP hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct GpConfig {
    /// RBF length scale (unit-cube coordinates).
    pub length_scale: f64,
    /// Signal variance σ²_f.
    pub signal_var: f64,
    /// Observation-noise variance σ²_n (also the jitter keeping the kernel
    /// matrix positive definite).
    pub noise_var: f64,
}

impl Default for GpConfig {
    fn default() -> Self {
        Self {
            length_scale: 0.3,
            signal_var: 1.0,
            noise_var: 1e-4,
        }
    }
}

/// Posterior prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posterior {
    /// Posterior mean.
    pub mean: f64,
    /// Posterior standard deviation (≥ 0).
    pub std: f64,
}

/// Fitted Gaussian process over observed `(x, y)` pairs.
pub struct GaussianProcess {
    cfg: GpConfig,
    xs: Vec<Vec<f64>>,
    /// Mean of the raw targets (the GP is fit on centered targets).
    y_mean: f64,
    /// Cholesky factor of `K + σ²_n I`.
    chol: Matrix,
    /// `(K + σ²_n I)^{-1} (y - ȳ)`.
    alpha: Matrix,
}

impl GaussianProcess {
    /// Fit on observations. Returns `None` when no observations are given
    /// or the kernel matrix fails to factor.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], cfg: GpConfig) -> Option<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return None;
        }
        let n = xs.len();
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut v = rbf(&xs[i], &xs[j], &cfg);
                if i == j {
                    v += cfg.noise_var;
                }
                k.set(i, j, v as f32);
            }
        }
        let chol = linalg::cholesky(&k).ok()?;
        let y = Matrix::from_vec(n, 1, ys.iter().map(|&v| (v - y_mean) as f32).collect());
        let tmp = linalg::solve_lower(&chol, &y).ok()?;
        let alpha = linalg::solve_lower_transpose(&chol, &tmp).ok()?;
        Some(Self {
            cfg,
            xs: xs.to_vec(),
            y_mean,
            chol,
            alpha,
        })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when fitted on nothing (cannot happen through [`Self::fit`]).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Posterior at a query point.
    pub fn predict(&self, x: &[f64]) -> Posterior {
        let n = self.xs.len();
        let kstar = Matrix::from_vec(
            n,
            1,
            self.xs
                .iter()
                .map(|xi| rbf(xi, x, &self.cfg) as f32)
                .collect(),
        );
        let mut mean = self.y_mean;
        for i in 0..n {
            mean += (kstar.get(i, 0) * self.alpha.get(i, 0)) as f64;
        }
        // var = k(x,x) - ||L^{-1} k*||².
        let v = linalg::solve_lower(&self.chol, &kstar).expect("factor is valid");
        let mut var = self.cfg.signal_var + self.cfg.noise_var;
        for i in 0..n {
            var -= (v.get(i, 0) as f64).powi(2);
        }
        Posterior {
            mean,
            std: var.max(0.0).sqrt(),
        }
    }
}

fn rbf(a: &[f64], b: &[f64], cfg: &GpConfig) -> f64 {
    let d2: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
    cfg.signal_var * (-d2 / (2.0 * cfg.length_scale * cfg.length_scale)).exp()
}

/// Standard normal PDF.
pub fn normal_pdf(z: f64) -> f64 {
    (-(z * z) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max abs error ~1.5e-7 — far below anything acquisition ranking needs).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Expected improvement of a maximization problem at posterior `p` over the
/// current best observed value.
pub fn expected_improvement(p: Posterior, best: f64, xi: f64) -> f64 {
    if p.std <= 1e-12 {
        return (p.mean - best - xi).max(0.0);
    }
    let z = (p.mean - best - xi) / p.std;
    (p.mean - best - xi) * normal_cdf(z) + p.std * normal_pdf(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_xs() -> Vec<Vec<f64>> {
        vec![vec![0.0], vec![0.25], vec![0.5], vec![0.75], vec![1.0]]
    }

    #[test]
    fn interpolates_observations() {
        let xs = grid_xs();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 3.0).sin()).collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).expect("fit");
        for (x, &y) in xs.iter().zip(ys.iter()) {
            let p = gp.predict(x);
            assert!((p.mean - y).abs() < 0.05, "at {x:?}: {} vs {y}", p.mean);
            assert!(
                p.std < 0.1,
                "posterior at data should be confident, got {}",
                p.std
            );
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let xs = vec![vec![0.5]];
        let ys = vec![1.0];
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).expect("fit");
        let near = gp.predict(&[0.5]);
        let far = gp.predict(&[0.0]);
        assert!(
            far.std > near.std * 2.0,
            "near {} far {}",
            near.std,
            far.std
        );
    }

    #[test]
    fn mean_reverts_to_prior_far_from_data() {
        // Two observations with mean 0.5: a distant query's posterior mean
        // falls back toward 0.5, while at-data predictions stay extreme.
        let xs = vec![vec![0.45], vec![0.55]];
        let ys = vec![0.0, 1.0];
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).expect("fit");
        let far = gp.predict(&[-3.0]);
        assert!((far.mean - 0.5).abs() < 0.05, "far mean {}", far.mean);
        let at_high = gp.predict(&[0.55]);
        assert!(at_high.mean > 0.8, "at-data mean {}", at_high.mean);
    }

    #[test]
    fn empty_fit_rejected() {
        assert!(GaussianProcess::fit(&[], &[], GpConfig::default()).is_none());
    }

    #[test]
    fn cdf_properties() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!(normal_cdf(5.0) > 0.999_999);
        assert!(normal_cdf(-5.0) < 1e-6);
        // Symmetry.
        for z in [0.3, 1.0, 2.2] {
            assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-6);
        }
        // Known value Φ(1) ≈ 0.841345.
        assert!((normal_cdf(1.0) - 0.841_345).abs() < 1e-4);
    }

    #[test]
    fn ei_prefers_uncertain_or_promising() {
        let best = 0.5;
        let promising = expected_improvement(
            Posterior {
                mean: 0.8,
                std: 0.1,
            },
            best,
            0.0,
        );
        let poor_certain = expected_improvement(
            Posterior {
                mean: 0.2,
                std: 1e-15,
            },
            best,
            0.0,
        );
        let poor_uncertain = expected_improvement(
            Posterior {
                mean: 0.2,
                std: 0.5,
            },
            best,
            0.0,
        );
        assert!(promising > poor_uncertain);
        assert!(poor_uncertain > poor_certain);
        assert_eq!(poor_certain, 0.0);
    }

    #[test]
    fn ei_is_monotone_in_mean_and_std() {
        let best = 0.0;
        let e1 = expected_improvement(
            Posterior {
                mean: 0.1,
                std: 0.2,
            },
            best,
            0.0,
        );
        let e2 = expected_improvement(
            Posterior {
                mean: 0.3,
                std: 0.2,
            },
            best,
            0.0,
        );
        assert!(e2 > e1);
        let e3 = expected_improvement(
            Posterior {
                mean: 0.1,
                std: 0.4,
            },
            best,
            0.0,
        );
        assert!(e3 > e1);
    }

    #[test]
    fn two_dimensional_fit() {
        let xs: Vec<Vec<f64>> = (0..16)
            .map(|i| vec![(i % 4) as f64 / 3.0, (i / 4) as f64 / 3.0])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| -(x[0] - 0.5).powi(2) - (x[1] - 0.5).powi(2))
            .collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).expect("fit");
        // The fitted surface must rank the center above a corner.
        let center = gp.predict(&[0.5, 0.5]).mean;
        let corner = gp.predict(&[0.0, 0.0]).mean;
        assert!(center > corner);
    }
}
