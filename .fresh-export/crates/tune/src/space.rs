//! Hyperparameter search-space description (the Table I space: log-uniform
//! learning rate, categorical hidden dimension, integer sort-k range).

use rand::{rngs::StdRng, RngExt};

/// One search dimension.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamSpec {
    /// Log-uniform continuous range `[lo, hi]` (e.g. learning rates).
    LogUniform {
        /// Lower bound (> 0).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Categorical choice over explicit values.
    Choice(Vec<f64>),
    /// Uniform integer range `[lo, hi]` inclusive.
    IntRange {
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
}

impl ParamSpec {
    /// Sample a raw value.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        match self {
            ParamSpec::LogUniform { lo, hi } => {
                let (l, h) = (lo.ln(), hi.ln());
                (l + rng.random::<f64>() * (h - l)).exp()
            }
            ParamSpec::Choice(values) => values[rng.random_range(0..values.len())],
            ParamSpec::IntRange { lo, hi } => rng.random_range(*lo..=*hi) as f64,
        }
    }

    /// Map a raw value into `[0, 1]` (the GP's coordinate system).
    pub fn to_unit(&self, value: f64) -> f64 {
        match self {
            ParamSpec::LogUniform { lo, hi } => (value.ln() - lo.ln()) / (hi.ln() - lo.ln()),
            ParamSpec::Choice(values) => {
                let idx = values
                    .iter()
                    .position(|&v| v == value)
                    .expect("value not in choice list");
                if values.len() <= 1 {
                    0.5
                } else {
                    idx as f64 / (values.len() - 1) as f64
                }
            }
            ParamSpec::IntRange { lo, hi } => {
                if hi == lo {
                    0.5
                } else {
                    (value - *lo as f64) / (*hi - *lo) as f64
                }
            }
        }
    }

    /// Map a unit-cube coordinate back to a valid raw value (rounded /
    /// snapped as the spec requires).
    pub fn from_unit(&self, unit: f64) -> f64 {
        let u = unit.clamp(0.0, 1.0);
        match self {
            ParamSpec::LogUniform { lo, hi } => (lo.ln() + u * (hi.ln() - lo.ln())).exp(),
            ParamSpec::Choice(values) => {
                let idx = ((u * (values.len() - 1) as f64).round() as usize).min(values.len() - 1);
                values[idx]
            }
            ParamSpec::IntRange { lo, hi } => (*lo as f64 + u * (*hi - *lo) as f64)
                .round()
                .clamp(*lo as f64, *hi as f64),
        }
    }
}

/// Named collection of search dimensions.
#[derive(Debug, Clone, Default)]
pub struct SearchSpace {
    dims: Vec<(String, ParamSpec)>,
}

impl SearchSpace {
    /// Empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's Table I space.
    pub fn table1() -> Self {
        let mut s = Self::new();
        s.add("lr", ParamSpec::LogUniform { lo: 1e-6, hi: 1e-2 });
        s.add(
            "hidden_dim",
            ParamSpec::Choice(vec![16.0, 32.0, 64.0, 128.0]),
        );
        s.add("sort_k", ParamSpec::IntRange { lo: 5, hi: 150 });
        s
    }

    /// Append a dimension.
    pub fn add(&mut self, name: impl Into<String>, spec: ParamSpec) -> &mut Self {
        self.dims.push((name.into(), spec));
        self
    }

    /// Dimensionality.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Dimension name.
    pub fn name(&self, i: usize) -> &str {
        &self.dims[i].0
    }

    /// Dimension spec.
    pub fn spec(&self, i: usize) -> &ParamSpec {
        &self.dims[i].1
    }

    /// Sample a full raw configuration.
    pub fn sample(&self, rng: &mut StdRng) -> Vec<f64> {
        self.dims.iter().map(|(_, s)| s.sample(rng)).collect()
    }

    /// Raw configuration → unit cube.
    pub fn to_unit(&self, point: &[f64]) -> Vec<f64> {
        assert_eq!(point.len(), self.dims.len());
        point
            .iter()
            .zip(self.dims.iter())
            .map(|(&v, (_, s))| s.to_unit(v))
            .collect()
    }

    /// Unit cube → valid raw configuration.
    pub fn from_unit(&self, unit: &[f64]) -> Vec<f64> {
        assert_eq!(unit.len(), self.dims.len());
        unit.iter()
            .zip(self.dims.iter())
            .map(|(&u, (_, s))| s.from_unit(u))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn log_uniform_stays_in_bounds_and_spreads() {
        let spec = ParamSpec::LogUniform { lo: 1e-6, hi: 1e-2 };
        let mut rng = StdRng::seed_from_u64(0);
        let mut below_1e4 = 0;
        for _ in 0..200 {
            let v = spec.sample(&mut rng);
            assert!((1e-6..=1e-2).contains(&v));
            if v < 1e-4 {
                below_1e4 += 1;
            }
        }
        // Log-uniform: half the samples fall below the geometric midpoint.
        assert!((60..=140).contains(&below_1e4), "got {below_1e4}");
    }

    #[test]
    fn choice_samples_only_listed_values() {
        let spec = ParamSpec::Choice(vec![16.0, 32.0, 64.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let v = spec.sample(&mut rng);
            assert!([16.0, 32.0, 64.0].contains(&v));
        }
    }

    #[test]
    fn int_range_inclusive() {
        let spec = ParamSpec::IntRange { lo: 5, hi: 7 };
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let v = spec.sample(&mut rng);
            assert_eq!(v, v.round());
            assert!((5.0..=7.0).contains(&v));
            seen.insert(v as i64);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn unit_roundtrip() {
        let space = SearchSpace::table1();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let p = space.sample(&mut rng);
            let u = space.to_unit(&p);
            for &x in &u {
                assert!((0.0..=1.0).contains(&x), "unit coord {x}");
            }
            let back = space.from_unit(&u);
            // Roundtrip is exact for choices/ints, close for log-uniform.
            assert!((back[0].ln() - p[0].ln()).abs() < 1e-9);
            assert_eq!(back[1], p[1]);
            assert_eq!(back[2], p[2]);
        }
    }

    #[test]
    fn from_unit_snaps_to_valid_values() {
        let space = SearchSpace::table1();
        let p = space.from_unit(&[0.5, 0.4, 0.5]);
        assert!([16.0, 32.0, 64.0, 128.0].contains(&p[1]));
        assert_eq!(p[2], p[2].round());
        assert!((5.0..=150.0).contains(&p[2]));
    }

    #[test]
    fn table1_space_shape() {
        let s = SearchSpace::table1();
        assert_eq!(s.len(), 3);
        assert_eq!(s.name(0), "lr");
        assert_eq!(s.name(1), "hidden_dim");
        assert_eq!(s.name(2), "sort_k");
    }
}
