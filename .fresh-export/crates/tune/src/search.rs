//! Search strategies: random search, successive halving, and GP-based
//! Bayesian optimization with Expected Improvement (the DeepHyper
//! "Centralized Bayesian Optimization" analogue the paper uses, §III-D).

use crate::gp::{expected_improvement, GaussianProcess, GpConfig};
use crate::space::SearchSpace;
use rand::{rngs::StdRng, SeedableRng};

/// One evaluated configuration.
#[derive(Debug, Clone)]
pub struct Trial {
    /// Raw configuration values (aligned with the space's dimensions).
    pub point: Vec<f64>,
    /// Objective value (higher is better).
    pub value: f64,
}

/// Search outcome: best configuration plus the full evaluation history.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best configuration found.
    pub best: Trial,
    /// Every evaluation in order.
    pub history: Vec<Trial>,
}

impl SearchResult {
    fn from_history(history: Vec<Trial>) -> Self {
        let best = history
            .iter()
            .max_by(|a, b| a.value.partial_cmp(&b.value).expect("finite objective"))
            .expect("at least one trial")
            .clone();
        Self { best, history }
    }

    /// Running maximum after each evaluation (for convergence plots).
    pub fn running_best(&self) -> Vec<f64> {
        let mut best = f64::NEG_INFINITY;
        self.history
            .iter()
            .map(|t| {
                best = best.max(t.value);
                best
            })
            .collect()
    }
}

/// Pure random search: `budget` independent samples.
pub fn random_search(
    space: &SearchSpace,
    mut objective: impl FnMut(&[f64]) -> f64,
    budget: usize,
    seed: u64,
) -> SearchResult {
    assert!(budget > 0, "random_search: zero budget");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut history = Vec::with_capacity(budget);
    for _ in 0..budget {
        let point = space.sample(&mut rng);
        let value = objective(&point);
        history.push(Trial { point, value });
    }
    SearchResult::from_history(history)
}

/// Successive halving: start `initial` random configurations at the lowest
/// fidelity, keep the top half at each rung, doubling the fidelity, until
/// one survives. `objective(point, fidelity)` is evaluated fresh per rung.
pub fn successive_halving(
    space: &SearchSpace,
    mut objective: impl FnMut(&[f64], usize) -> f64,
    initial: usize,
    base_fidelity: usize,
    seed: u64,
) -> SearchResult {
    assert!(initial >= 2, "successive_halving: need at least two arms");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arms: Vec<Vec<f64>> = (0..initial).map(|_| space.sample(&mut rng)).collect();
    let mut fidelity = base_fidelity.max(1);
    let mut history = Vec::new();
    while arms.len() > 1 {
        let mut scored: Vec<Trial> = arms
            .iter()
            .map(|p| Trial {
                point: p.clone(),
                value: objective(p, fidelity),
            })
            .collect();
        history.extend(scored.iter().cloned());
        scored.sort_by(|a, b| b.value.partial_cmp(&a.value).expect("finite objective"));
        let keep = scored.len().div_ceil(2);
        arms = scored.into_iter().take(keep).map(|t| t.point).collect();
        fidelity *= 2;
    }
    // Final evaluation of the survivor at the last fidelity.
    let survivor = arms.pop().expect("one survivor");
    let value = objective(&survivor, fidelity);
    history.push(Trial {
        point: survivor,
        value,
    });
    SearchResult::from_history(history)
}

/// Bayesian-optimization settings.
#[derive(Debug, Clone, Copy)]
pub struct BayesConfig {
    /// Random configurations before the surrogate takes over.
    pub n_init: usize,
    /// Candidate points scored by EI per iteration.
    pub n_candidates: usize,
    /// EI exploration bonus ξ.
    pub xi: f64,
    /// GP kernel settings.
    pub gp: GpConfig,
}

impl Default for BayesConfig {
    fn default() -> Self {
        Self {
            n_init: 5,
            n_candidates: 256,
            xi: 0.01,
            gp: GpConfig::default(),
        }
    }
}

/// GP-EI Bayesian optimization: `n_init` random evaluations, then pick the
/// candidate maximizing Expected Improvement under the GP posterior fitted
/// on all observations so far. Falls back to random sampling whenever the
/// GP cannot be fit.
pub fn bayes_opt(
    space: &SearchSpace,
    mut objective: impl FnMut(&[f64]) -> f64,
    budget: usize,
    cfg: BayesConfig,
    seed: u64,
) -> SearchResult {
    assert!(budget > 0, "bayes_opt: zero budget");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut history: Vec<Trial> = Vec::with_capacity(budget);

    for i in 0..budget {
        let point = if i < cfg.n_init.min(budget) {
            space.sample(&mut rng)
        } else {
            let xs: Vec<Vec<f64>> = history.iter().map(|t| space.to_unit(&t.point)).collect();
            let ys: Vec<f64> = history.iter().map(|t| t.value).collect();
            match GaussianProcess::fit(&xs, &ys, cfg.gp) {
                Some(gp) => {
                    let best = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let mut best_candidate: Option<(f64, Vec<f64>)> = None;
                    for _ in 0..cfg.n_candidates {
                        let cand = space.sample(&mut rng);
                        let unit = space.to_unit(&cand);
                        let ei = expected_improvement(gp.predict(&unit), best, cfg.xi);
                        if best_candidate.as_ref().is_none_or(|(b, _)| ei > *b) {
                            best_candidate = Some((ei, cand));
                        }
                    }
                    best_candidate.expect("candidates sampled").1
                }
                None => space.sample(&mut rng),
            }
        };
        let value = objective(&point);
        history.push(Trial { point, value });
    }
    SearchResult::from_history(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ParamSpec;

    /// Smooth 2-D test objective with maximum 1.0 at (0.002, 64).
    fn toy_space() -> SearchSpace {
        let mut s = SearchSpace::new();
        s.add("a", ParamSpec::LogUniform { lo: 1e-5, hi: 1e-1 });
        s.add("b", ParamSpec::IntRange { lo: 1, hi: 128 });
        s
    }

    fn toy_objective(p: &[f64]) -> f64 {
        let da = (p[0].ln() - 0.002f64.ln()) / 3.0;
        let db = (p[1] - 64.0) / 64.0;
        (-da * da - db * db).exp()
    }

    #[test]
    fn random_search_finds_decent_point() {
        let space = toy_space();
        let res = random_search(&space, toy_objective, 60, 0);
        assert_eq!(res.history.len(), 60);
        assert!(res.best.value > 0.5, "best {}", res.best.value);
        // Running best is monotone.
        let rb = res.running_best();
        for w in rb.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn bayes_opt_beats_random_on_average() {
        let space = toy_space();
        let budget = 25;
        let mut bo_wins = 0;
        for seed in 0..6 {
            let bo = bayes_opt(&space, toy_objective, budget, BayesConfig::default(), seed);
            let rs = random_search(&space, toy_objective, budget, seed);
            if bo.best.value >= rs.best.value {
                bo_wins += 1;
            }
        }
        assert!(bo_wins >= 4, "BO won only {bo_wins}/6 seeds");
    }

    #[test]
    fn bayes_opt_history_length_and_determinism() {
        let space = toy_space();
        let a = bayes_opt(&space, toy_objective, 15, BayesConfig::default(), 3);
        let b = bayes_opt(&space, toy_objective, 15, BayesConfig::default(), 3);
        assert_eq!(a.history.len(), 15);
        assert_eq!(a.best.point, b.best.point);
        assert_eq!(a.best.value, b.best.value);
    }

    #[test]
    fn halving_keeps_the_strong_arm() {
        let space = toy_space();
        // Fidelity-dependent objective: value approaches the true objective
        // as fidelity grows (noisy early rungs).
        let obj = |p: &[f64], fid: usize| {
            let noise = 0.3 / fid as f64 * ((p[1] as i64 % 7) as f64 - 3.0) / 3.0;
            toy_objective(p) + noise
        };
        let res = successive_halving(&space, obj, 16, 1, 5);
        assert!(res.best.value > 0.3, "best {}", res.best.value);
        // History contains all rung evaluations: 16 + 8 + 4 + 2 + final 1.
        assert_eq!(res.history.len(), 16 + 8 + 4 + 2 + 1);
    }

    #[test]
    fn points_stay_inside_the_space() {
        let space = toy_space();
        let res = bayes_opt(&space, toy_objective, 20, BayesConfig::default(), 9);
        for t in &res.history {
            assert!((1e-5..=1e-1).contains(&t.point[0]));
            assert!((1.0..=128.0).contains(&t.point[1]));
            assert_eq!(t.point[1], t.point[1].round());
        }
    }

    #[test]
    #[should_panic(expected = "zero budget")]
    fn zero_budget_rejected() {
        let space = toy_space();
        let _ = random_search(&space, toy_objective, 0, 0);
    }
}
