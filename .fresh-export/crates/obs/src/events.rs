//! Bounded ring-buffer event log.
//!
//! Events are rare, discrete happenings worth a narrative line in a report
//! (a circuit-breaker trip, a watchdog rollback, a checkpoint write) — not
//! per-sample telemetry, which belongs in counters and histograms. The
//! buffer is bounded: once full, the oldest event is overwritten and the
//! overwrite is counted, so a long-running process reports recent history
//! plus an honest "N older events dropped".

use serde::{Deserialize, Serialize};

/// One logged event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Clock reading when the event was recorded, nanoseconds.
    pub at_ns: u64,
    /// Event name (slash-taxonomy, e.g. `serve/breaker`).
    pub name: String,
    /// Free-form detail line.
    pub detail: String,
}

/// Fixed-capacity ring of [`Event`]s, oldest-first on export.
#[derive(Debug)]
pub struct EventRing {
    slots: Vec<Event>,
    capacity: usize,
    /// Index the next event will land in once the ring has wrapped.
    next: usize,
    /// Events overwritten after the ring filled.
    dropped: u64,
}

impl EventRing {
    /// Ring holding at most `capacity` events (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: Vec::with_capacity(capacity.min(1024)),
            capacity,
            next: 0,
            dropped: 0,
        }
    }

    /// Append an event, overwriting the oldest when full.
    pub fn push(&mut self, event: Event) {
        if self.slots.len() < self.capacity {
            self.slots.push(event);
        } else {
            self.slots[self.next] = event;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently retained, oldest first.
    pub fn to_vec(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.slots.len());
        out.extend_from_slice(&self.slots[self.next..]);
        out.extend_from_slice(&self.slots[..self.next]);
        out
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no event has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> Event {
        Event {
            at_ns: i,
            name: format!("e{i}"),
            detail: String::new(),
        }
    }

    #[test]
    fn retains_in_order_before_wrapping() {
        let mut r = EventRing::new(4);
        for i in 0..3 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        let names: Vec<u64> = r.to_vec().iter().map(|e| e.at_ns).collect();
        assert_eq!(names, vec![0, 1, 2]);
    }

    #[test]
    fn wraps_oldest_first_and_counts_drops() {
        let mut r = EventRing::new(3);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let at: Vec<u64> = r.to_vec().iter().map(|e| e.at_ns).collect();
        assert_eq!(at, vec![2, 3, 4], "oldest events were overwritten");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.to_vec()[0].at_ns, 2);
    }
}
