//! Injectable time sources.
//!
//! Every duration the observability layer records flows through the
//! [`Clock`] trait, so tests can substitute a [`FakeClock`] and assert on
//! exact histogram contents, while production uses the monotonic
//! [`MonotonicClock`]. Nothing outside this layer reads the clock, which is
//! how instrumentation is guaranteed not to perturb training results: time
//! is observed, never consumed by the computation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic nanosecond counter. Implementations must never go backwards.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since an arbitrary (per-clock) origin.
    fn now_ns(&self) -> u64;
}

/// Production clock: `std::time::Instant` anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // ~584 years of nanoseconds fit in u64; saturate rather than wrap.
        self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }
}

/// Deterministic test clock: time advances only when told to.
///
/// Shared freely (`Arc`) between the code under test and the test body;
/// [`advance`](FakeClock::advance) is atomic, so concurrent readers always
/// observe a monotone sequence.
#[derive(Debug, Default)]
pub struct FakeClock {
    ns: AtomicU64,
}

impl FakeClock {
    /// A fake clock starting at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.advance_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Move time forward by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_advances_only_on_demand() {
        let c = FakeClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(Duration::from_micros(5));
        assert_eq!(c.now_ns(), 5_000);
        c.advance_ns(7);
        assert_eq!(c.now_ns(), 5_007);
    }
}
