//! Fixed-bucket latency histograms.
//!
//! Recording is one atomic increment plus two atomic adds — safe to call
//! from rayon workers without ordering constraints, because bucket counts
//! and sums are commutative. Snapshots are plain data: they merge
//! (commutatively and associatively, see the property tests) and round-trip
//! through JSON, so per-shard histograms can be aggregated offline.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets. Bucket 0 holds sub-microsecond samples; bucket `b`
/// (for `b >= 1`) holds samples in `[2^(b-1), 2^b)` microseconds; the last
/// bucket absorbs everything from ~76 hours up.
pub const NUM_BUCKETS: usize = 40;

/// Exclusive upper bound of bucket `b`, in nanoseconds (the last bucket is
/// unbounded and reports `u64::MAX`).
pub fn bucket_upper_ns(b: usize) -> u64 {
    assert!(b < NUM_BUCKETS, "bucket index out of range");
    if b == NUM_BUCKETS - 1 {
        u64::MAX
    } else {
        1_000u64.saturating_mul(1 << b)
    }
}

fn bucket_index(ns: u64) -> usize {
    let us = ns / 1_000;
    if us == 0 {
        0
    } else {
        // First b with us < 2^b, i.e. the bit length of `us`.
        (64 - us.leading_zeros() as usize).min(NUM_BUCKETS - 1)
    }
}

/// Lock-free concurrent histogram with [`NUM_BUCKETS`] exponential buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample of `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record one duration sample.
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the bucket contents. Counters are read
    /// individually; a snapshot taken concurrently with recording may be
    /// off by in-flight samples, which is fine for monitoring.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`]: mergeable and JSON-serializable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts ([`NUM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_ns: u64,
    /// Largest sample seen, nanoseconds.
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Combine two snapshots. Saturating and element-wise, so merging is
    /// commutative and associative — shard order never changes the result.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let n = self.buckets.len().max(other.buckets.len());
        let at = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
        HistogramSnapshot {
            buckets: (0..n)
                .map(|i| at(&self.buckets, i).saturating_add(at(&other.buckets, i)))
                .collect(),
            count: self.count.saturating_add(other.count),
            sum_ns: self.sum_ns.saturating_add(other.sum_ns),
            max_ns: self.max_ns.max(other.max_ns),
        }
    }

    /// Mean sample in nanoseconds (0 when empty — never a division by
    /// zero).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Nearest-rank quantile estimate in nanoseconds: the upper bound of
    /// the bucket containing the `q`-quantile sample (0 when empty). An
    /// upper bound rather than an interpolation, so reported quantiles
    /// never understate latency.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q.clamp(0.0, 1.0)).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_upper_ns(b.min(NUM_BUCKETS - 1)).min(self.max_ns.max(1));
            }
        }
        self.max_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(999), 0);
        assert_eq!(bucket_index(1_000), 1); // 1µs → [1, 2)µs
        assert_eq!(bucket_index(1_999), 1);
        assert_eq!(bucket_index(2_000), 2);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        for ns in [0u64, 1, 1_000, 123_456, 7_000_000, u64::MAX / 2] {
            let b = bucket_index(ns);
            assert!(ns < bucket_upper_ns(b), "{ns} must fall under bound");
            if b > 0 {
                assert!(ns >= bucket_upper_ns(b - 1), "{ns} must exceed lower bound");
            }
        }
    }

    #[test]
    fn record_accumulates_count_sum_max() {
        let h = Histogram::new();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(17));
        h.record_ns(500);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum_ns, 3_000 + 17_000 + 500);
        assert_eq!(s.max_ns, 17_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn empty_snapshot_is_safe() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.mean_ns(), 0);
        assert_eq!(s.quantile_ns(0.5), 0);
        assert_eq!(s.quantile_ns(0.99), 0);
    }

    #[test]
    fn quantile_is_an_upper_bound() {
        let h = Histogram::new();
        for us in [100u64, 200, 300, 400, 5_000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert!(s.quantile_ns(0.5) >= 200_000);
        assert!(s.quantile_ns(1.0) >= 5_000_000 || s.quantile_ns(1.0) == s.max_ns);
        assert!(s.quantile_ns(1.0) <= s.max_ns.max(bucket_upper_ns(NUM_BUCKETS - 2)));
    }

    #[test]
    fn merge_adds_everything() {
        let a = {
            let h = Histogram::new();
            h.record_ns(1_500);
            h.record_ns(40_000);
            h.snapshot()
        };
        let b = {
            let h = Histogram::new();
            h.record_ns(800);
            h.snapshot()
        };
        let m = a.merge(&b);
        assert_eq!(m.count, 3);
        assert_eq!(m.sum_ns, 42_300);
        assert_eq!(m.max_ns, 40_000);
        assert_eq!(m, b.merge(&a), "merge must be commutative");
    }
}
