//! # amdgcnn-obs
//!
//! Stage-level observability for the AM-DGCNN system: hierarchical timing
//! spans on an injectable [`Clock`], lock-free counters and gauges,
//! fixed-bucket mergeable latency [`Histogram`]s, and a bounded
//! ring-buffer event log — all exportable as one JSON [`Report`].
//!
//! ## Design rules
//!
//! - **Observation never feeds back into computation.** Nothing outside
//!   this crate reads the clock or any recorded value on a decision path,
//!   so an instrumented run is bit-identical to an uninstrumented one
//!   (proved by `tests/instrumentation_determinism.rs` at the workspace
//!   root).
//! - **Disabled means near-zero.** [`Obs::disabled`] carries no registry;
//!   every recording call reduces to an `Option` check that the branch
//!   predictor eats. Handles ([`Timer`], [`Counter`], [`Gauge`]) built
//!   from a disabled `Obs` are permanent no-ops.
//! - **Hot paths use handles, not name lookups.** [`Obs::timer`] resolves
//!   the name once (a short registry lock); the returned [`Timer`] then
//!   records with plain atomics, safe to share across rayon workers.
//! - **Names are a slash taxonomy** (`pipeline/sample/khop`,
//!   `train/forward`, `serve/queue_wait`), giving spans their hierarchy
//!   without runtime parent tracking — reports sort lexicographically, so
//!   children list under their parents.

#![warn(missing_docs)]

pub mod clock;
pub mod events;
pub mod hist;
pub mod report;

pub use clock::{Clock, FakeClock, MonotonicClock};
pub use events::{Event, EventRing};
pub use hist::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use report::{CounterReport, GaugeReport, Report, SpanReport};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// `Debug` for handle types that only reveal enabled/disabled.
macro_rules! fmt_inner_debug {
    ($ty:ty, $name:literal) => {
        impl std::fmt::Debug for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct($name)
                    .field("enabled", &self.inner.is_some())
                    .finish()
            }
        }
    };
}

/// Default capacity of the event ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

struct Registry {
    clock: Arc<dyn Clock>,
    timers: RwLock<BTreeMap<String, Arc<Histogram>>>,
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicI64>>>,
    events: Mutex<EventRing>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

/// Handle on an observability registry — the one type instrumented code
/// holds. Cloning is cheap (an `Arc` bump) and every clone records into the
/// same registry, so a trainer and a server can share one report.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Registry>>,
}

impl Obs {
    /// A no-op handle: every recording call is an `Option` check, reports
    /// are empty. This is the default everywhere, so uninstrumented use
    /// pays nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled registry on the production [`MonotonicClock`].
    pub fn enabled() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// An enabled registry on an explicit clock (tests inject
    /// [`FakeClock`] here to pin exact histogram contents).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            inner: Some(Arc::new(Registry {
                clock,
                timers: RwLock::new(BTreeMap::new()),
                counters: RwLock::new(BTreeMap::new()),
                gauges: RwLock::new(BTreeMap::new()),
                events: Mutex::new(EventRing::new(DEFAULT_EVENT_CAPACITY)),
            })),
        }
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolve (or register) the named span timer. Do this once outside a
    /// hot loop; the returned handle records lock-free.
    pub fn timer(&self, name: &str) -> Timer {
        let Some(reg) = &self.inner else {
            return Timer { inner: None };
        };
        let hist = get_or_insert(&reg.timers, name, || Arc::new(Histogram::new()));
        Timer {
            inner: Some(TimerInner {
                hist,
                clock: Arc::clone(&reg.clock),
            }),
        }
    }

    /// Resolve (or register) the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(reg) = &self.inner else {
            return Counter { inner: None };
        };
        Counter {
            inner: Some(get_or_insert(&reg.counters, name, || {
                Arc::new(AtomicU64::new(0))
            })),
        }
    }

    /// Resolve (or register) the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(reg) = &self.inner else {
            return Gauge { inner: None };
        };
        Gauge {
            inner: Some(get_or_insert(&reg.gauges, name, || {
                Arc::new(AtomicI64::new(0))
            })),
        }
    }

    /// Start a one-off span (convenience over `timer(name).start()` for
    /// cold paths; hot loops should hold the [`Timer`]).
    pub fn span(&self, name: &str) -> SpanGuard {
        self.timer(name).start()
    }

    /// Log an event. `detail` is only evaluated when the handle is
    /// enabled, so formatting costs nothing in the disabled build.
    pub fn event(&self, name: &str, detail: impl FnOnce() -> String) {
        if let Some(reg) = &self.inner {
            let event = Event {
                at_ns: reg.clock.now_ns(),
                name: name.to_string(),
                detail: detail(),
            };
            reg.events
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(event);
        }
    }

    /// Current clock reading in nanoseconds (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |r| r.clock.now_ns())
    }

    /// Export everything recorded so far. Disabled handles return an empty
    /// report.
    pub fn report(&self) -> Report {
        let Some(reg) = &self.inner else {
            return Report::default();
        };
        let spans = reg
            .timers
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, hist)| SpanReport::from_snapshot(name.clone(), hist.snapshot()))
            .collect();
        let counters = reg
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, v)| CounterReport {
                name: name.clone(),
                value: v.load(Ordering::Relaxed),
            })
            .collect();
        let gauges = reg
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, v)| GaugeReport {
                name: name.clone(),
                value: v.load(Ordering::Relaxed),
            })
            .collect();
        let ring = reg.events.lock().unwrap_or_else(|e| e.into_inner());
        Report {
            spans,
            counters,
            gauges,
            events: ring.to_vec(),
            events_dropped: ring.dropped(),
        }
    }
}

fn get_or_insert<T: Clone>(
    map: &RwLock<BTreeMap<String, T>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> T {
    if let Some(v) = map.read().unwrap_or_else(|e| e.into_inner()).get(name) {
        return v.clone();
    }
    map.write()
        .unwrap_or_else(|e| e.into_inner())
        .entry(name.to_string())
        .or_insert_with(make)
        .clone()
}

struct TimerInner {
    hist: Arc<Histogram>,
    clock: Arc<dyn Clock>,
}

/// Pre-resolved handle on one named span: starting, stopping, and direct
/// duration recording are lock-free (atomics only), so a `Timer` can be
/// shared by reference across rayon workers.
pub struct Timer {
    inner: Option<TimerInner>,
}

fmt_inner_debug!(Timer, "Timer");

impl Timer {
    /// Begin a span; the returned guard records the elapsed time into this
    /// timer's histogram when dropped (or at an explicit
    /// [`finish`](SpanGuard::finish)).
    pub fn start(&self) -> SpanGuard {
        SpanGuard {
            inner: self.inner.as_ref().map(|t| GuardInner {
                started_ns: t.clock.now_ns(),
                hist: Arc::clone(&t.hist),
                clock: Arc::clone(&t.clock),
            }),
        }
    }

    /// Record an externally measured duration (e.g. a queue wait computed
    /// from request timestamps).
    pub fn record(&self, d: Duration) {
        if let Some(t) = &self.inner {
            t.hist.record(d);
        }
    }

    /// Record an externally measured duration in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        if let Some(t) = &self.inner {
            t.hist.record_ns(ns);
        }
    }

    /// Samples recorded so far (0 when disabled).
    pub fn count(&self) -> u64 {
        self.inner.as_ref().map_or(0, |t| t.hist.count())
    }

    /// Plain-data copy of this timer's histogram (empty when disabled).
    /// Snapshots merge commutatively ([`HistogramSnapshot::merge`]), so
    /// per-replica timers aggregate into fleet-level quantiles without
    /// sharing a registry.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.inner
            .as_ref()
            .map_or_else(HistogramSnapshot::default, |t| t.hist.snapshot())
    }
}

struct GuardInner {
    started_ns: u64,
    hist: Arc<Histogram>,
    clock: Arc<dyn Clock>,
}

/// RAII span: measures from [`Timer::start`] to drop.
#[must_use = "a span guard measures until dropped; binding it to `_` drops immediately"]
pub struct SpanGuard {
    inner: Option<GuardInner>,
}

impl SpanGuard {
    /// End the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            g.hist
                .record_ns(g.clock.now_ns().saturating_sub(g.started_ns));
        }
    }
}

fmt_inner_debug!(SpanGuard, "SpanGuard");

/// Monotone event counter.
#[derive(Debug, Clone)]
pub struct Counter {
    inner: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.inner {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.inner.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Instantaneous signed level (queue depth, live worker count).
#[derive(Debug, Clone)]
pub struct Gauge {
    inner: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.inner {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Adjust the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.inner {
            g.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current level (0 when disabled).
    pub fn get(&self) -> i64 {
        self.inner.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let t = obs.timer("x");
        t.record(Duration::from_secs(1));
        drop(t.start());
        let c = obs.counter("y");
        c.inc();
        assert_eq!(c.get(), 0);
        obs.event("z", || unreachable!("detail must not be evaluated"));
        assert_eq!(obs.report(), Report::default());
    }

    #[test]
    fn fake_clock_pins_span_durations() {
        let clock = Arc::new(FakeClock::new());
        let obs = Obs::with_clock(clock.clone());
        let t = obs.timer("stage/a");
        let guard = t.start();
        clock.advance(Duration::from_micros(250));
        guard.finish();
        let report = obs.report();
        let span = report.span("stage/a").expect("span recorded");
        assert_eq!(span.count, 1);
        assert_eq!(span.total_ns, 250_000);
        assert_eq!(span.max_ns, 250_000);
    }

    #[test]
    fn clones_share_one_registry() {
        let obs = Obs::enabled();
        let other = obs.clone();
        other.counter("shared").add(3);
        obs.counter("shared").add(4);
        assert_eq!(obs.report().counter("shared"), Some(7));
    }

    #[test]
    fn gauges_move_both_ways() {
        let obs = Obs::enabled();
        let g = obs.gauge("depth");
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(-1);
        assert_eq!(obs.report().gauge("depth"), Some(-1));
    }

    #[test]
    fn events_flow_to_report_with_fake_time() {
        let clock = Arc::new(FakeClock::new());
        let obs = Obs::with_clock(clock.clone());
        clock.advance_ns(42);
        obs.event("serve/breaker", || "trip".into());
        let report = obs.report();
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].at_ns, 42);
        assert_eq!(report.events[0].detail, "trip");
        assert_eq!(report.events_dropped, 0);
    }

    #[test]
    fn timers_are_safe_across_threads() {
        let obs = Obs::enabled();
        let t = obs.timer("parallel");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        t.record_ns(10);
                    }
                });
            }
        });
        assert_eq!(t.count(), 400);
        assert_eq!(obs.report().span("parallel").expect("span").total_ns, 4_000);
    }

    #[test]
    fn timer_snapshots_are_mergeable_plain_data() {
        let obs = Obs::enabled();
        let a = obs.timer("merge/a");
        let b = obs.timer("merge/b");
        a.record_ns(1_500);
        b.record_ns(40_000);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count, 2);
        assert_eq!(merged.sum_ns, 41_500);
        // Disabled timers snapshot to the empty (merge-identity) histogram.
        let disabled = Obs::disabled().timer("merge/c").snapshot();
        assert_eq!(disabled.merge(&merged), merged);
    }

    #[test]
    fn report_spans_sort_by_name() {
        let obs = Obs::enabled();
        obs.timer("b/second").record_ns(1);
        obs.timer("a/first").record_ns(1);
        let report = obs.report();
        let names: Vec<&str> = report.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a/first", "b/second"]);
    }
}
