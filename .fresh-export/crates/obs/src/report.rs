//! Point-in-time JSON-exportable view of a registry.

use crate::events::Event;
use crate::hist::HistogramSnapshot;
use serde::{Deserialize, Serialize};

/// Aggregated statistics of one named span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanReport {
    /// Span name (slash taxonomy, e.g. `train/forward`).
    pub name: String,
    /// Times the span ran.
    pub count: u64,
    /// Total time inside the span, nanoseconds.
    pub total_ns: u64,
    /// Mean duration, nanoseconds.
    pub mean_ns: u64,
    /// Median duration estimate (bucket upper bound), nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile duration estimate (bucket upper bound), nanoseconds.
    pub p99_ns: u64,
    /// Longest single run, nanoseconds.
    pub max_ns: u64,
    /// The full bucket histogram the estimates derive from.
    pub hist: HistogramSnapshot,
}

impl SpanReport {
    /// Build from a name and a histogram snapshot.
    pub fn from_snapshot(name: String, hist: HistogramSnapshot) -> Self {
        Self {
            count: hist.count,
            total_ns: hist.sum_ns,
            mean_ns: hist.mean_ns(),
            p50_ns: hist.quantile_ns(0.50),
            p99_ns: hist.quantile_ns(0.99),
            max_ns: hist.max_ns,
            name,
            hist,
        }
    }
}

/// One named counter value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterReport {
    /// Counter name.
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// One named gauge value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeReport {
    /// Gauge name.
    pub name: String,
    /// Current value.
    pub value: i64,
}

/// Everything a registry knows, as plain serializable data. Span, counter,
/// and gauge lists are sorted by name, so two reports of the same run are
/// byte-identical regardless of registration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Report {
    /// Per-span timing statistics.
    pub spans: Vec<SpanReport>,
    /// Counter values.
    pub counters: Vec<CounterReport>,
    /// Gauge values.
    pub gauges: Vec<GaugeReport>,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events dropped because the ring was full.
    pub events_dropped: u64,
}

impl Report {
    /// Look up a span by name.
    pub fn span(&self, name: &str) -> Option<&SpanReport> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Look up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }

    /// Parse a report back from [`to_json`](Report::to_json) output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Render the spans as an aligned, human-readable table (one line per
    /// span, millisecond units).
    pub fn format_spans(&self) -> String {
        let mut out = format!(
            "{:<32} {:>10} {:>12} {:>10} {:>10} {:>10}\n",
            "span", "count", "total ms", "mean ms", "p99 ms", "max ms"
        );
        for s in &self.spans {
            let ms = |ns: u64| ns as f64 / 1e6;
            out.push_str(&format!(
                "{:<32} {:>10} {:>12.3} {:>10.3} {:>10.3} {:>10.3}\n",
                s.name,
                s.count,
                ms(s.total_ns),
                ms(s.mean_ns),
                ms(s.p99_ns),
                ms(s.max_ns)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn report_round_trips_through_json() {
        let h = Histogram::new();
        h.record_ns(5_000);
        h.record_ns(9_000);
        let report = Report {
            spans: vec![SpanReport::from_snapshot(
                "train/forward".into(),
                h.snapshot(),
            )],
            counters: vec![CounterReport {
                name: "serve/queries".into(),
                value: 42,
            }],
            gauges: vec![GaugeReport {
                name: "serve/queue_depth".into(),
                value: -3,
            }],
            events: vec![Event {
                at_ns: 7,
                name: "serve/breaker".into(),
                detail: "trip".into(),
            }],
            events_dropped: 1,
        };
        let back = Report::from_json(&report.to_json()).expect("parse");
        assert_eq!(back, report);
        assert_eq!(back.counter("serve/queries"), Some(42));
        assert_eq!(back.gauge("serve/queue_depth"), Some(-3));
        assert_eq!(back.span("train/forward").expect("span").count, 2);
    }

    #[test]
    fn format_spans_mentions_every_span() {
        let report = Report {
            spans: vec![SpanReport::from_snapshot(
                "pipeline/sample".into(),
                HistogramSnapshot::default(),
            )],
            ..Default::default()
        };
        let text = report.format_spans();
        assert!(text.contains("pipeline/sample"));
        assert!(text.contains("count"));
    }
}
