//! Property-based tests of histogram snapshot algebra: merging is
//! commutative and associative, and counts/sums survive a JSON round-trip.

use amdgcnn_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn snapshot_from(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &ns in samples {
        h.record_ns(ns);
    }
    h.snapshot()
}

fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..2_000_000_000, 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(a in samples(), b in samples()) {
        let (sa, sb) = (snapshot_from(&a), snapshot_from(&b));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
    }

    #[test]
    fn merge_is_associative(a in samples(), b in samples(), c in samples()) {
        let (sa, sb, sc) = (snapshot_from(&a), snapshot_from(&b), snapshot_from(&c));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
    }

    #[test]
    fn merge_equals_recording_everything_in_one(a in samples(), b in samples()) {
        let merged = snapshot_from(&a).merge(&snapshot_from(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, snapshot_from(&all));
    }

    #[test]
    fn snapshot_round_trips_through_json(a in samples()) {
        let s = snapshot_from(&a);
        let json = serde_json::to_string(&s).expect("snapshot serializes");
        let back: HistogramSnapshot = serde_json::from_str(&json).expect("snapshot parses");
        prop_assert_eq!(&back, &s);
        prop_assert_eq!(back.count, a.len() as u64);
        prop_assert_eq!(back.sum_ns, a.iter().sum::<u64>());
    }

    #[test]
    fn invariants_hold(a in samples()) {
        let s = snapshot_from(&a);
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        prop_assert_eq!(s.max_ns, a.iter().copied().max().unwrap_or(0));
        if s.count > 0 {
            let p50 = s.quantile_ns(0.5);
            let p99 = s.quantile_ns(0.99);
            prop_assert!(p50 <= p99, "quantiles must be monotone: {} > {}", p50, p99);
            prop_assert!(p99 <= s.max_ns.max(1));
        }
    }
}
