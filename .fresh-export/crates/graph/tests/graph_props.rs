//! Property-based tests of the graph substrate: random graphs checked
//! against brute-force reference implementations.

use amdgcnn_graph::bfs::{bfs_distances, connected_components, UNREACHABLE};
use amdgcnn_graph::heuristics::{common_neighbor_set, Heuristic};
use amdgcnn_graph::khop::{extract_enclosing_subgraph, NeighborhoodMode, SubgraphConfig};
use amdgcnn_graph::{GraphBuilder, KnowledgeGraph};
use proptest::prelude::*;

/// Strategy: a random multigraph with up to `max_n` nodes and typed edges.
fn random_graph(max_n: usize, max_edges: usize) -> impl Strategy<Value = KnowledgeGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 0..5u16), 1..max_edges).prop_map(
            move |edges| {
                let mut b = GraphBuilder::new(n);
                for (u, v, t) in edges {
                    b.add_edge(u, v, t);
                }
                b.build()
            },
        )
    })
}

/// Reference: Bellman-Ford-style relaxation for hop distances.
fn reference_distances(g: &KnowledgeGraph, src: u32) -> Vec<u32> {
    let n = g.num_nodes();
    let mut dist = vec![UNREACHABLE; n];
    dist[src as usize] = 0;
    for _ in 0..n {
        let mut changed = false;
        for e in g.edges() {
            for (a, b) in [(e.u, e.v), (e.v, e.u)] {
                if dist[a as usize] != UNREACHABLE {
                    let cand = dist[a as usize] + 1;
                    if cand < dist[b as usize] {
                        dist[b as usize] = cand;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bfs_matches_reference(g in random_graph(12, 24)) {
        for src in 0..g.num_nodes() as u32 {
            prop_assert_eq!(bfs_distances(&g, src), reference_distances(&g, src));
        }
    }

    #[test]
    fn components_agree_with_reachability(g in random_graph(10, 16)) {
        let comp = connected_components(&g);
        for a in 0..g.num_nodes() as u32 {
            let d = bfs_distances(&g, a);
            for b in 0..g.num_nodes() as u32 {
                let same = comp[a as usize] == comp[b as usize];
                let reachable = d[b as usize] != UNREACHABLE;
                prop_assert_eq!(same, reachable, "nodes {} and {}", a, b);
            }
        }
    }

    #[test]
    fn heuristics_are_symmetric_and_nonnegative(g in random_graph(12, 30)) {
        for h in Heuristic::ALL {
            for a in 0..g.num_nodes() as u32 {
                for b in 0..g.num_nodes() as u32 {
                    let s = h.score(&g, a, b);
                    prop_assert!(s >= 0.0, "{} negative", h.name());
                    prop_assert!((s - h.score(&g, b, a)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn common_neighbors_brute_force(g in random_graph(12, 30)) {
        for a in 0..g.num_nodes() as u32 {
            for b in 0..g.num_nodes() as u32 {
                let fast = common_neighbor_set(&g, a, b);
                let brute: Vec<u32> = (0..g.num_nodes() as u32)
                    .filter(|&w| g.has_edge(a, w) && g.has_edge(b, w))
                    .collect();
                prop_assert_eq!(fast, brute);
            }
        }
    }

    #[test]
    fn enclosing_subgraph_invariants(g in random_graph(14, 40), seed in 0u64..100) {
        // Pick a deterministic pair of distinct nodes.
        let a = (seed % g.num_nodes() as u64) as u32;
        let b = ((seed / 7 + 1 + a as u64) % g.num_nodes() as u64) as u32;
        prop_assume!(a != b);
        for mode in [NeighborhoodMode::Union, NeighborhoodMode::Intersection] {
            let cfg = SubgraphConfig { mode, hops: 2, max_nodes_per_hop: Some(6), seed };
            let sub = extract_enclosing_subgraph(&g, a, b, &cfg);
            // Targets present, first, and labeled 1.
            prop_assert_eq!(sub.nodes[0], a);
            prop_assert_eq!(sub.nodes[1], b);
            prop_assert_eq!(sub.drnl[0], 1);
            prop_assert_eq!(sub.drnl[1], 1);
            // No duplicate nodes.
            let mut ids = sub.nodes.clone();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), before, "duplicate nodes in subgraph");
            // Every edge is internal and not the target link.
            for e in &sub.edges {
                prop_assert!((e.u as usize) < sub.nodes.len());
                prop_assert!((e.v as usize) < sub.nodes.len());
                let uv = (e.u.min(e.v), e.u.max(e.v));
                prop_assert!(uv != (0, 1), "target link leaked");
                // The edge exists in the parent graph with the same type.
                let (ou, ov) = (sub.nodes[e.u as usize], sub.nodes[e.v as usize]);
                let parent_types: Vec<u16> = g
                    .edges_between(ou, ov)
                    .iter()
                    .map(|&eid| g.edge(eid).etype)
                    .collect();
                prop_assert!(parent_types.contains(&e.etype));
            }
            // Distances never exceed what's possible in the subgraph, and
            // DRNL 0 exactly when a distance is missing.
            for i in 0..sub.num_nodes() {
                let unreachable =
                    sub.dist_a[i] == UNREACHABLE || sub.dist_b[i] == UNREACHABLE;
                prop_assert_eq!(sub.drnl[i] == 0, unreachable && i > 1, "node {}", i);
            }
        }
    }

    #[test]
    fn builder_roundtrip_preserves_edges(g in random_graph(10, 20)) {
        // Rebuilding from the edge list yields the same adjacency.
        let mut b = GraphBuilder::with_node_types(g.node_types().to_vec());
        for e in g.edges() {
            b.add_edge(e.u, e.v, e.etype);
        }
        let g2 = b.build();
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        for u in 0..g.num_nodes() as u32 {
            prop_assert_eq!(g.neighbors(u), g2.neighbors(u));
        }
    }
}
