//! Uniform and node2vec-biased random walks (Grover & Leskovec, 2016).
//!
//! node2vec interpolates between BFS-like and DFS-like exploration with the
//! return parameter `p` and in-out parameter `q`: stepping from `v` (having
//! arrived from `t`) the unnormalized probability of moving to `x` is
//! `1/p` if `x = t`, `1` if `x` neighbors `t`, and `1/q` otherwise.

use crate::graph::KnowledgeGraph;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Walk-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct WalkConfig {
    /// Steps per walk (number of nodes is `walk_length`).
    pub walk_length: usize,
    /// Walks started from every node.
    pub walks_per_node: usize,
    /// node2vec return parameter.
    pub p: f64,
    /// node2vec in-out parameter.
    pub q: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self {
            walk_length: 20,
            walks_per_node: 4,
            p: 1.0,
            q: 1.0,
            seed: 0,
        }
    }
}

/// One uniform random walk from `start` (stops early at dead ends).
pub fn random_walk(
    g: &KnowledgeGraph,
    start: u32,
    walk_length: usize,
    rng: &mut StdRng,
) -> Vec<u32> {
    let mut walk = Vec::with_capacity(walk_length);
    walk.push(start);
    let mut cur = start;
    while walk.len() < walk_length {
        let neigh = g.neighbors(cur);
        if neigh.is_empty() {
            break;
        }
        cur = neigh[rng.random_range(0..neigh.len())].0;
        walk.push(cur);
    }
    walk
}

/// One node2vec-biased walk from `start`.
pub fn node2vec_walk(
    g: &KnowledgeGraph,
    start: u32,
    cfg: &WalkConfig,
    rng: &mut StdRng,
) -> Vec<u32> {
    let mut walk = Vec::with_capacity(cfg.walk_length);
    walk.push(start);
    let mut prev: Option<u32> = None;
    let mut cur = start;
    while walk.len() < cfg.walk_length {
        let neigh = g.neighbors(cur);
        if neigh.is_empty() {
            break;
        }
        let next = match prev {
            None => neigh[rng.random_range(0..neigh.len())].0,
            Some(t) => {
                // Weighted choice with node2vec biases.
                let mut weights: Vec<f64> = Vec::with_capacity(neigh.len());
                let mut total = 0.0;
                for &(x, _) in neigh {
                    let w = if x == t {
                        1.0 / cfg.p
                    } else if g.has_edge(x, t) {
                        1.0
                    } else {
                        1.0 / cfg.q
                    };
                    total += w;
                    weights.push(total);
                }
                let r = rng.random_range(0.0..total);
                let idx = weights.partition_point(|&w| w <= r).min(neigh.len() - 1);
                neigh[idx].0
            }
        };
        prev = Some(cur);
        cur = next;
        walk.push(cur);
    }
    walk
}

/// Generate `walks_per_node` node2vec walks from every node, deterministic
/// in `cfg.seed`.
pub fn generate_walks(g: &KnowledgeGraph, cfg: &WalkConfig) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut walks = Vec::with_capacity(g.num_nodes() * cfg.walks_per_node);
    for round in 0..cfg.walks_per_node {
        let _ = round;
        for start in 0..g.num_nodes() as u32 {
            walks.push(node2vec_walk(g, start, cfg, &mut rng));
        }
    }
    walks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::KnowledgeGraph;

    fn path5() -> KnowledgeGraph {
        KnowledgeGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn walks_follow_edges() {
        let g = path5();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let w = random_walk(&g, 2, 10, &mut rng);
            assert_eq!(w[0], 2);
            for pair in w.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]), "non-edge step {pair:?}");
            }
        }
    }

    #[test]
    fn dead_end_stops_walk() {
        let g = KnowledgeGraph::from_edges(3, &[(0, 1)]);
        let mut rng = StdRng::seed_from_u64(2);
        let w = random_walk(&g, 2, 10, &mut rng);
        assert_eq!(w, vec![2]);
    }

    #[test]
    fn node2vec_walks_follow_edges_too() {
        let g = path5();
        let cfg = WalkConfig {
            p: 0.5,
            q: 2.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let w = node2vec_walk(&g, 0, &cfg, &mut rng);
            for pair in w.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn low_p_returns_often() {
        // On a star, with p tiny the walk keeps bouncing back to where it
        // came from; with p huge it rarely returns immediately.
        let mut b = crate::graph::GraphBuilder::new(9);
        for leaf in 1..9 {
            b.add_edge(0, leaf, 0);
        }
        let g = b.build();
        let count_returns = |p: f64, seed: u64| {
            let cfg = WalkConfig {
                walk_length: 40,
                p,
                q: 1.0,
                walks_per_node: 1,
                seed,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let w = node2vec_walk(&g, 1, &cfg, &mut rng);
            w.windows(3).filter(|t| t[0] == t[2]).count()
        };
        let low: usize = (0..10).map(|s| count_returns(0.05, s)).sum();
        let high: usize = (0..10).map(|s| count_returns(20.0, s)).sum();
        assert!(low > high, "returns with low p {low} vs high p {high}");
    }

    #[test]
    fn generate_walks_is_deterministic_and_complete() {
        let g = path5();
        let cfg = WalkConfig {
            walks_per_node: 3,
            walk_length: 8,
            ..Default::default()
        };
        let w1 = generate_walks(&g, &cfg);
        let w2 = generate_walks(&g, &cfg);
        assert_eq!(w1, w2);
        assert_eq!(w1.len(), 15);
        // Every node appears as a start.
        for start in 0..5u32 {
            assert!(w1.iter().any(|w| w[0] == start));
        }
    }
}
