//! PageRank and personalized PageRank (high-order heuristics, paper §I).
//!
//! Both are γ-decaying heuristics in the sense of Zhang & Chen (2018), which
//! is what justifies SEAL's local enclosing subgraphs: their influence decays
//! exponentially with hop distance.
//!
//! The power iteration runs as one [`CsrMatrix::spmv_f64`] per step against
//! the (integer-valued, hence exactly representable) adjacency-count
//! operator; the per-node out-degree division stays in `f64` outside the
//! matrix so no transition probability is ever rounded to `f32`.

use crate::graph::KnowledgeGraph;
use amdgcnn_tensor::CsrMatrix;

/// PageRank parameters.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor (probability of following an edge).
    pub damping: f64,
    /// Maximum power iterations.
    pub max_iters: usize,
    /// L1 convergence tolerance.
    pub tol: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            max_iters: 100,
            tol: 1e-10,
        }
    }
}

/// Global PageRank vector (sums to 1). Dangling nodes redistribute their
/// mass uniformly.
pub fn pagerank(g: &KnowledgeGraph, cfg: &PageRankConfig) -> Vec<f64> {
    personalized_pagerank(g, None, cfg)
}

/// Personalized PageRank: restarts jump to `source` when given, otherwise to
/// the uniform distribution (plain PageRank).
pub fn personalized_pagerank(
    g: &KnowledgeGraph,
    source: Option<u32>,
    cfg: &PageRankConfig,
) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let restart = |i: usize| -> f64 {
        match source {
            Some(s) => {
                if i == s as usize {
                    1.0
                } else {
                    0.0
                }
            }
            None => 1.0 / n as f64,
        }
    };
    // A_t[v][u] = #edges u → v: one spmv of the damped, degree-normalized
    // rank vector distributes each node's mass across its out-edges.
    let mut triplets = Vec::new();
    for u in 0..n {
        for v in g.neighbor_ids(u as u32) {
            triplets.push((v as usize, u, 1.0f32));
        }
    }
    let a_t = CsrMatrix::from_triplets(n, n, &triplets);
    let degs: Vec<usize> = (0..n).map(|u| g.degree(u as u32)).collect();

    let mut rank: Vec<f64> = (0..n).map(restart).collect();
    let mut push = vec![0.0f64; n];
    for _ in 0..cfg.max_iters {
        let mut dangling_mass = 0.0;
        for (u, slot) in push.iter_mut().enumerate() {
            if degs[u] == 0 {
                dangling_mass += rank[u];
                *slot = 0.0;
            } else {
                *slot = cfg.damping * rank[u] / degs[u] as f64;
            }
        }
        let mut next = a_t.spmv_f64(&push);
        for (i, slot) in next.iter_mut().enumerate() {
            *slot += (1.0 - cfg.damping) * restart(i);
            if dangling_mass > 0.0 {
                // Dangling nodes restart like a teleport.
                *slot += cfg.damping * dangling_mass * restart(i);
            }
        }
        let delta: f64 = rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < cfg.tol {
            break;
        }
    }
    rank
}

/// PageRank link score: `π_u(v) + π_v(u)` with personalized walks from each
/// endpoint (the symmetric PPR score used in the link-prediction
/// literature).
pub fn pagerank_score(g: &KnowledgeGraph, u: u32, v: u32, cfg: &PageRankConfig) -> f64 {
    let pu = personalized_pagerank(g, Some(u), cfg);
    let pv = personalized_pagerank(g, Some(v), cfg);
    pu[v as usize] + pv[u as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, KnowledgeGraph};

    fn cycle(n: usize) -> KnowledgeGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(i as u32, ((i + 1) % n) as u32, 0);
        }
        b.build()
    }

    #[test]
    fn sums_to_one() {
        let g = cycle(7);
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-8, "total {total}");
    }

    #[test]
    fn symmetric_graph_is_uniform() {
        let g = cycle(5);
        let pr = pagerank(&g, &PageRankConfig::default());
        for &p in &pr {
            assert!((p - 0.2).abs() < 1e-8);
        }
    }

    #[test]
    fn hub_ranks_highest() {
        // Star: center 0.
        let mut b = GraphBuilder::new(6);
        for leaf in 1..6 {
            b.add_edge(0, leaf, 0);
        }
        let g = b.build();
        let pr = pagerank(&g, &PageRankConfig::default());
        for leaf in 1..6 {
            assert!(pr[0] > pr[leaf], "center must outrank leaves");
        }
    }

    #[test]
    fn dangling_mass_is_conserved() {
        let g = KnowledgeGraph::from_edges(4, &[(0, 1)]); // nodes 2, 3 dangling
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-8, "total {total}");
        assert!(pr[2] > 0.0);
    }

    #[test]
    fn personalized_mass_concentrates_near_source() {
        // Path 0-1-2-3-4: PPR from 0 decays with distance.
        let g = KnowledgeGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let ppr = personalized_pagerank(&g, Some(0), &PageRankConfig::default());
        // Node 0 has degree 1 and pushes all its mass to node 1, so strict
        // node-by-node monotonicity starts at node 1; beyond that the mass
        // decays with distance from the restart node.
        assert!(ppr[1] > ppr[2]);
        assert!(ppr[2] > ppr[3]);
        assert!(ppr[3] > ppr[4]);
        assert!(
            ppr[0] > ppr[2],
            "restart node holds more mass than 2-hop nodes"
        );
    }

    #[test]
    fn ppr_score_is_symmetric_and_decays() {
        let g = KnowledgeGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let cfg = PageRankConfig::default();
        let near = pagerank_score(&g, 0, 1, &cfg);
        let far = pagerank_score(&g, 0, 4, &cfg);
        assert!(near > far, "PPR score must decay with distance");
        assert!((pagerank_score(&g, 1, 3, &cfg) - pagerank_score(&g, 3, 1, &cfg)).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = KnowledgeGraph::from_edges(0, &[]);
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
    }
}
