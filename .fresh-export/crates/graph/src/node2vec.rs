//! node2vec embeddings: skip-gram with negative sampling trained on the
//! biased walks from [`crate::walks`].
//!
//! SEAL optionally appends these embeddings to the node feature vector; the
//! paper observed no gain on knowledge graphs and disabled them (§III-B),
//! but they remain available as a feature-source switch in the core crate.

use crate::graph::KnowledgeGraph;
use crate::walks::{generate_walks, WalkConfig};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// node2vec hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct Node2VecConfig {
    /// Embedding dimensionality.
    pub dims: usize,
    /// Skip-gram window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs over the walk corpus.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Walk generation settings.
    pub walk: WalkConfig,
}

impl Default for Node2VecConfig {
    fn default() -> Self {
        Self {
            dims: 16,
            window: 3,
            negatives: 3,
            epochs: 2,
            lr: 0.025,
            walk: WalkConfig::default(),
        }
    }
}

/// Learned embeddings, one row per node.
#[derive(Debug, Clone)]
pub struct NodeEmbeddings {
    /// Embedding dimensionality.
    pub dims: usize,
    data: Vec<f32>,
}

impl NodeEmbeddings {
    /// Embedding vector of a node.
    pub fn get(&self, node: u32) -> &[f32] {
        let d = self.dims;
        &self.data[node as usize * d..(node as usize + 1) * d]
    }

    /// Number of embedded nodes.
    pub fn num_nodes(&self) -> usize {
        self.data.len() / self.dims
    }

    /// Cosine similarity between two nodes' embeddings.
    pub fn cosine(&self, a: u32, b: u32) -> f32 {
        let (va, vb) = (self.get(a), self.get(b));
        let dot: f32 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
        let na: f32 = va.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = vb.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Train node2vec embeddings on `g`.
pub fn node2vec_embeddings(g: &KnowledgeGraph, cfg: &Node2VecConfig) -> NodeEmbeddings {
    let n = g.num_nodes();
    let d = cfg.dims;
    let mut rng = StdRng::seed_from_u64(cfg.walk.seed ^ N2V_SALT);
    // Input ("center") and output ("context") embedding tables.
    let mut emb_in: Vec<f32> = (0..n * d)
        .map(|_| (rng.random::<f32>() - 0.5) / d as f32)
        .collect();
    let mut emb_out: Vec<f32> = vec![0.0; n * d];

    let walks = generate_walks(g, &cfg.walk);
    let mut grad_center = vec![0.0f32; d];
    for _epoch in 0..cfg.epochs {
        for walk in &walks {
            for (i, &center) in walk.iter().enumerate() {
                let lo = i.saturating_sub(cfg.window);
                let hi = (i + cfg.window + 1).min(walk.len());
                for (j, &context) in walk.iter().enumerate().take(hi).skip(lo) {
                    if j == i {
                        continue;
                    }
                    grad_center.iter_mut().for_each(|v| *v = 0.0);
                    // Positive pair plus `negatives` sampled negatives.
                    for neg in 0..=cfg.negatives {
                        let (target, label) = if neg == 0 {
                            (context as usize, 1.0f32)
                        } else {
                            (rng.random_range(0..n), 0.0f32)
                        };
                        let ci = center as usize * d;
                        let ti = target * d;
                        let dot: f32 = (0..d).map(|k| emb_in[ci + k] * emb_out[ti + k]).sum();
                        let err = (sigmoid(dot) - label) * cfg.lr;
                        for k in 0..d {
                            grad_center[k] += err * emb_out[ti + k];
                            emb_out[ti + k] -= err * emb_in[ci + k];
                        }
                    }
                    let ci = center as usize * d;
                    for k in 0..d {
                        emb_in[ci + k] -= grad_center[k];
                    }
                }
            }
        }
    }
    NodeEmbeddings {
        dims: d,
        data: emb_in,
    }
}

/// Seed salt for the embedding RNG (kept distinct from the walk RNG so the
/// two random streams never alias).
const N2V_SALT: u64 = 0x6e32_7665_6373_616c;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Barbell: two K4 cliques joined by one bridge edge.
    fn barbell() -> KnowledgeGraph {
        let mut b = GraphBuilder::new(8);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_edge(i, j, 0);
            }
        }
        for i in 4..8u32 {
            for j in (i + 1)..8 {
                b.add_edge(i, j, 0);
            }
        }
        b.add_edge(3, 4, 0);
        b.build()
    }

    fn small_cfg(seed: u64) -> Node2VecConfig {
        Node2VecConfig {
            dims: 8,
            epochs: 4,
            walk: WalkConfig {
                walk_length: 12,
                walks_per_node: 8,
                seed,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn shapes_and_finiteness() {
        let g = barbell();
        let emb = node2vec_embeddings(&g, &small_cfg(1));
        assert_eq!(emb.num_nodes(), 8);
        assert_eq!(emb.get(0).len(), 8);
        for node in 0..8u32 {
            assert!(emb.get(node).iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = barbell();
        let a = node2vec_embeddings(&g, &small_cfg(7));
        let b = node2vec_embeddings(&g, &small_cfg(7));
        assert_eq!(a.get(3), b.get(3));
    }

    #[test]
    fn community_members_closer_than_cross_community() {
        let g = barbell();
        let emb = node2vec_embeddings(&g, &small_cfg(3));
        // Average within-clique cosine vs cross-clique cosine.
        let mut within = 0.0f32;
        let mut wcount = 0;
        let mut cross = 0.0f32;
        let mut ccount = 0;
        for a in 0..8u32 {
            for b in (a + 1)..8u32 {
                let c = emb.cosine(a, b);
                if (a < 4) == (b < 4) {
                    within += c;
                    wcount += 1;
                } else {
                    cross += c;
                    ccount += 1;
                }
            }
        }
        let within = within / wcount as f32;
        let cross = cross / ccount as f32;
        assert!(
            within > cross,
            "within-community cosine {within} should exceed cross-community {cross}"
        );
    }

    #[test]
    fn cosine_is_bounded() {
        let g = barbell();
        let emb = node2vec_embeddings(&g, &small_cfg(9));
        for a in 0..8u32 {
            for b in 0..8u32 {
                let c = emb.cosine(a, b);
                assert!((-1.001..=1.001).contains(&c));
            }
        }
    }
}
