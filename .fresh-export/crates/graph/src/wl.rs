//! Weisfeiler-Lehman color refinement — the vertex-ordering machinery of
//! the Weisfeiler-Lehman Neural Machine (Zhang & Chen, 2017), the
//! supervised-heuristic-learning predecessor the paper discusses in §VI-B.
//!
//! Colors are refined iteratively: each round a node's new color is the
//! equivalence class of `(old color, sorted multiset of neighbor colors)`.
//! The refinement stabilizes in at most `n` rounds; the final colors give a
//! canonical-ish vertex ranking that WLNM uses to order the rows of its
//! fixed-size adjacency representation.

use crate::graph::KnowledgeGraph;
use std::collections::HashMap;

/// Iteratively refine colors starting from `initial` until stable or
/// `max_rounds`. Returns the final color per node; colors are compacted to
/// `0..num_colors` and *order-preserving* with respect to the tuple
/// ordering of each round (so ranking by color is meaningful).
pub fn wl_refine(g: &KnowledgeGraph, initial: &[u64], max_rounds: usize) -> Vec<u64> {
    assert_eq!(
        initial.len(),
        g.num_nodes(),
        "initial colors must cover all nodes"
    );
    let mut colors: Vec<u64> = initial.to_vec();
    for _ in 0..max_rounds {
        // Signature per node: (own color, sorted neighbor colors).
        let mut signatures: Vec<(u64, Vec<u64>)> = Vec::with_capacity(g.num_nodes());
        for u in 0..g.num_nodes() as u32 {
            let mut neigh: Vec<u64> = g.neighbor_ids(u).map(|v| colors[v as usize]).collect();
            neigh.sort_unstable();
            signatures.push((colors[u as usize], neigh));
        }
        // Compact signatures to dense colors, preserving tuple order.
        let mut sorted: Vec<&(u64, Vec<u64>)> = signatures.iter().collect();
        sorted.sort();
        sorted.dedup();
        let rank: HashMap<&(u64, Vec<u64>), u64> = sorted
            .iter()
            .enumerate()
            .map(|(i, s)| (*s, i as u64))
            .collect();
        let next: Vec<u64> = signatures.iter().map(|s| rank[s]).collect();
        if next == colors {
            break;
        }
        colors = next;
    }
    colors
}

/// Number of distinct colors in a coloring.
pub fn num_colors(colors: &[u64]) -> usize {
    let mut sorted: Vec<u64> = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// The WLNM vertex ordering for an enclosing subgraph: rank nodes by
/// `(initial label, final WL color, node index)` ascending — targets (with
/// the smallest initial labels) come first, structurally distinct roles are
/// separated by WL, and the index breaks remaining ties deterministically.
pub fn wlnm_order(g: &KnowledgeGraph, initial: &[u64], max_rounds: usize) -> Vec<usize> {
    let colors = wl_refine(g, initial, max_rounds);
    let mut order: Vec<usize> = (0..g.num_nodes()).collect();
    order.sort_by_key(|&i| (initial[i], colors[i], i));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::KnowledgeGraph;

    /// Path 0-1-2-3-4.
    fn path5() -> KnowledgeGraph {
        KnowledgeGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn uniform_start_separates_by_structure() {
        // On a path, WL from uniform colors distinguishes endpoints,
        // second-ring nodes, and the center: 3 orbits.
        let g = path5();
        let colors = wl_refine(&g, &[0; 5], 10);
        assert_eq!(num_colors(&colors), 3);
        assert_eq!(colors[0], colors[4], "endpoints share an orbit");
        assert_eq!(colors[1], colors[3], "second ring shares an orbit");
        assert_ne!(colors[0], colors[2]);
    }

    #[test]
    fn regular_graph_stays_uniform() {
        // A cycle is vertex-transitive: WL cannot split it.
        let g = KnowledgeGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let colors = wl_refine(&g, &[0; 6], 10);
        assert_eq!(num_colors(&colors), 1);
    }

    #[test]
    fn initial_colors_are_respected() {
        // Distinct initial colors must never merge.
        let g = path5();
        let colors = wl_refine(&g, &[0, 1, 0, 1, 0], 10);
        assert_ne!(colors[0], colors[1]);
        // And refinement can only split further: nodes 0 and 4 share
        // (initial, degree) but node 0 neighbors a "1"-colored node of
        // degree 2... both do; check stability reached.
        let again = wl_refine(&g, &colors.clone(), 10);
        assert_eq!(num_colors(&again), num_colors(&colors));
    }

    #[test]
    fn refinement_is_permutation_equivariant() {
        // Relabeling nodes permutes colors identically.
        let g1 = KnowledgeGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let g2 = KnowledgeGraph::from_edges(4, &[(3, 2), (2, 1), (1, 0)]); // reversed ids
        let c1 = wl_refine(&g1, &[0; 4], 10);
        let c2 = wl_refine(&g2, &[0; 4], 10);
        // Node i in g1 corresponds to node 3-i in g2.
        for i in 0..4 {
            assert_eq!(c1[i], c2[3 - i]);
        }
    }

    #[test]
    fn wlnm_order_puts_low_initial_labels_first() {
        let g = path5();
        // Give node 2 the distinguished label 0 (a "target"), others 1.
        let initial = [1, 1, 0, 1, 1];
        let order = wlnm_order(&g, &initial, 5);
        assert_eq!(order[0], 2, "target must sort first");
        // Order is a permutation.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_and_single_node() {
        let g = KnowledgeGraph::from_edges(1, &[]);
        assert_eq!(wl_refine(&g, &[7], 3), vec![0]);
        let order = wlnm_order(&g, &[7], 3);
        assert_eq!(order, vec![0]);
    }
}
