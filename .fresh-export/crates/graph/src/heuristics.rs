//! First- and second-order link-prediction heuristics (paper §VI-A):
//! common neighbors, Jaccard, Adamic–Adar, resource allocation, and
//! preferential attachment. These serve as the classical baselines the
//! supervised-heuristic-learning line of work (WLNM, SEAL, AM-DGCNN)
//! improves upon.

use crate::graph::KnowledgeGraph;

/// Distinct common neighbors of `u` and `v`.
pub fn common_neighbor_set(g: &KnowledgeGraph, u: u32, v: u32) -> Vec<u32> {
    let nu = g.distinct_neighbors(u);
    let nv = g.distinct_neighbors(v);
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < nu.len() && j < nv.len() {
        match nu[i].cmp(&nv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(nu[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Common-neighbor count score.
pub fn common_neighbors(g: &KnowledgeGraph, u: u32, v: u32) -> f64 {
    common_neighbor_set(g, u, v).len() as f64
}

/// Jaccard coefficient `|N(u) ∩ N(v)| / |N(u) ∪ N(v)|` (0 when both
/// neighborhoods are empty).
pub fn jaccard(g: &KnowledgeGraph, u: u32, v: u32) -> f64 {
    let inter = common_neighbor_set(g, u, v).len();
    let nu = g.distinct_neighbors(u).len();
    let nv = g.distinct_neighbors(v).len();
    let union = nu + nv - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Adamic–Adar index `Σ_{w ∈ N(u)∩N(v)} 1 / ln |N(w)|`. Common neighbors of
/// degree ≤ 1 cannot occur (they neighbor both endpoints), so the logarithm
/// is always positive.
pub fn adamic_adar(g: &KnowledgeGraph, u: u32, v: u32) -> f64 {
    common_neighbor_set(g, u, v)
        .iter()
        .map(|&w| {
            let d = g.distinct_neighbors(w).len() as f64;
            1.0 / d.ln().max(f64::MIN_POSITIVE)
        })
        .sum()
}

/// Resource-allocation index `Σ_{w ∈ N(u)∩N(v)} 1 / |N(w)|`.
pub fn resource_allocation(g: &KnowledgeGraph, u: u32, v: u32) -> f64 {
    common_neighbor_set(g, u, v)
        .iter()
        .map(|&w| 1.0 / g.distinct_neighbors(w).len() as f64)
        .sum()
}

/// Preferential attachment `|N(u)| · |N(v)|`.
pub fn preferential_attachment(g: &KnowledgeGraph, u: u32, v: u32) -> f64 {
    (g.distinct_neighbors(u).len() * g.distinct_neighbors(v).len()) as f64
}

/// Identifier for a heuristic scorer (used by the baseline benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Heuristic {
    /// Common-neighbor count.
    CommonNeighbors,
    /// Jaccard coefficient.
    Jaccard,
    /// Adamic–Adar index.
    AdamicAdar,
    /// Resource-allocation index.
    ResourceAllocation,
    /// Preferential attachment.
    PreferentialAttachment,
}

impl Heuristic {
    /// Every first/second-order heuristic in canonical order.
    pub const ALL: [Heuristic; 5] = [
        Heuristic::CommonNeighbors,
        Heuristic::Jaccard,
        Heuristic::AdamicAdar,
        Heuristic::ResourceAllocation,
        Heuristic::PreferentialAttachment,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Heuristic::CommonNeighbors => "common-neighbors",
            Heuristic::Jaccard => "jaccard",
            Heuristic::AdamicAdar => "adamic-adar",
            Heuristic::ResourceAllocation => "resource-allocation",
            Heuristic::PreferentialAttachment => "preferential-attachment",
        }
    }

    /// Score a node pair.
    pub fn score(&self, g: &KnowledgeGraph, u: u32, v: u32) -> f64 {
        match self {
            Heuristic::CommonNeighbors => common_neighbors(g, u, v),
            Heuristic::Jaccard => jaccard(g, u, v),
            Heuristic::AdamicAdar => adamic_adar(g, u, v),
            Heuristic::ResourceAllocation => resource_allocation(g, u, v),
            Heuristic::PreferentialAttachment => preferential_attachment(g, u, v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Two hubs 0 and 1 sharing neighbors 2, 3; 0 also joins 4; 1 joins 5.
    fn shared_hub() -> KnowledgeGraph {
        let mut b = GraphBuilder::new(6);
        for n in [2, 3, 4] {
            b.add_edge(0, n, 0);
        }
        for n in [2, 3, 5] {
            b.add_edge(1, n, 0);
        }
        b.build()
    }

    #[test]
    fn common_neighbors_exact() {
        let g = shared_hub();
        assert_eq!(common_neighbor_set(&g, 0, 1), vec![2, 3]);
        assert_eq!(common_neighbors(&g, 0, 1), 2.0);
        assert_eq!(common_neighbors(&g, 4, 5), 0.0);
    }

    #[test]
    fn jaccard_exact() {
        let g = shared_hub();
        // |∩| = 2, |∪| = {2,3,4,5} = 4.
        assert!((jaccard(&g, 0, 1) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&g, 4, 5), 0.0);
    }

    #[test]
    fn jaccard_handles_isolated_pair() {
        let g = KnowledgeGraph::from_edges(3, &[(0, 1)]);
        assert_eq!(jaccard(&g, 2, 2), 0.0);
    }

    #[test]
    fn adamic_adar_weights_low_degree_neighbors_higher() {
        // w1 has degree 2 (only the endpoints); w2 has degree 4.
        let mut b = GraphBuilder::new(7);
        b.add_edge(0, 2, 0); // w1 = 2
        b.add_edge(1, 2, 0);
        b.add_edge(0, 3, 0); // w2 = 3
        b.add_edge(1, 3, 0);
        b.add_edge(3, 4, 0);
        b.add_edge(3, 5, 0);
        let g = b.build();
        let aa = adamic_adar(&g, 0, 1);
        let expect = 1.0 / 2f64.ln() + 1.0 / 4f64.ln();
        assert!((aa - expect).abs() < 1e-9);
        // RA analogue.
        let ra = resource_allocation(&g, 0, 1);
        assert!((ra - (0.5 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn preferential_attachment_multiplies_degrees() {
        let g = shared_hub();
        assert_eq!(preferential_attachment(&g, 0, 1), 9.0);
        assert_eq!(preferential_attachment(&g, 2, 4), 2.0);
    }

    #[test]
    fn heuristic_enum_dispatch_agrees() {
        let g = shared_hub();
        for h in Heuristic::ALL {
            let direct = match h {
                Heuristic::CommonNeighbors => common_neighbors(&g, 0, 1),
                Heuristic::Jaccard => jaccard(&g, 0, 1),
                Heuristic::AdamicAdar => adamic_adar(&g, 0, 1),
                Heuristic::ResourceAllocation => resource_allocation(&g, 0, 1),
                Heuristic::PreferentialAttachment => preferential_attachment(&g, 0, 1),
            };
            assert_eq!(h.score(&g, 0, 1), direct, "{}", h.name());
        }
    }

    #[test]
    fn symmetry_of_all_heuristics() {
        let g = shared_hub();
        for h in Heuristic::ALL {
            for (u, v) in [(0u32, 1u32), (2, 3), (0, 5)] {
                assert_eq!(h.score(&g, u, v), h.score(&g, v, u), "{}", h.name());
            }
        }
    }
}
