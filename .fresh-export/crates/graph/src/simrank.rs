//! SimRank (Jeh & Widom, 2002) — "two nodes are similar when their
//! neighbors are similar". The third γ-decaying high-order heuristic named
//! by the paper.
//!
//! The full fixed-point iteration is O(n²·d²) per round, so this
//! implementation is intended for the subgraph/benchmark scales it is used
//! at (n up to a few thousand); the baseline bench samples pairs rather
//! than scoring all of them.

use crate::graph::KnowledgeGraph;
use rayon::prelude::*;

/// SimRank parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimRankConfig {
    /// Decay constant C in (0, 1).
    pub decay: f64,
    /// Number of fixed-point iterations.
    pub iters: usize,
}

impl Default for SimRankConfig {
    fn default() -> Self {
        Self {
            decay: 0.8,
            iters: 5,
        }
    }
}

/// Full SimRank matrix (row-major `n*n` vector).
pub fn simrank_matrix(g: &KnowledgeGraph, cfg: &SimRankConfig) -> Vec<f64> {
    let n = g.num_nodes();
    let neighbors: Vec<Vec<u32>> = (0..n as u32).map(|u| g.distinct_neighbors(u)).collect();
    let mut sim = vec![0.0f64; n * n];
    for i in 0..n {
        sim[i * n + i] = 1.0;
    }
    let mut next = vec![0.0f64; n * n];
    for _ in 0..cfg.iters {
        next.par_chunks_mut(n).enumerate().for_each(|(a, row)| {
            for (b, slot) in row.iter_mut().enumerate() {
                if a == b {
                    *slot = 1.0;
                    continue;
                }
                let na = &neighbors[a];
                let nb = &neighbors[b];
                if na.is_empty() || nb.is_empty() {
                    *slot = 0.0;
                    continue;
                }
                let mut acc = 0.0;
                for &x in na {
                    let base = x as usize * n;
                    for &y in nb {
                        acc += sim[base + y as usize];
                    }
                }
                *slot = cfg.decay * acc / (na.len() * nb.len()) as f64;
            }
        });
        std::mem::swap(&mut sim, &mut next);
    }
    sim
}

/// SimRank score of a single pair (computes the full matrix; cache it via
/// [`simrank_matrix`] when scoring many pairs).
pub fn simrank_score(g: &KnowledgeGraph, u: u32, v: u32, cfg: &SimRankConfig) -> f64 {
    let n = g.num_nodes();
    simrank_matrix(g, cfg)[u as usize * n + v as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::KnowledgeGraph;

    #[test]
    fn self_similarity_is_one() {
        let g = KnowledgeGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = simrank_matrix(&g, &SimRankConfig::default());
        for i in 0..4 {
            assert_eq!(s[i * 4 + i], 1.0);
        }
    }

    #[test]
    fn symmetric() {
        let g = KnowledgeGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let n = 5;
        let s = simrank_matrix(&g, &SimRankConfig::default());
        for a in 0..n {
            for b in 0..n {
                assert!((s[a * n + b] - s[b * n + a]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn twins_are_maximally_similar() {
        // Nodes 1 and 2 have identical neighborhoods {0, 3}: structural
        // twins should be more similar than any non-twin distinct pair.
        let g = KnowledgeGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let n = 4;
        let s = simrank_matrix(
            &g,
            &SimRankConfig {
                decay: 0.8,
                iters: 8,
            },
        );
        let twin = s[n + 2]; // (1,2)
        for a in 0..n {
            for b in 0..n {
                if a != b && !(a == 1 && b == 2) && !(a == 2 && b == 1) {
                    assert!(
                        twin >= s[a * n + b],
                        "twin {twin} < sim({a},{b}) {}",
                        s[a * n + b]
                    );
                }
            }
        }
    }

    #[test]
    fn isolated_node_has_zero_similarity() {
        let g = KnowledgeGraph::from_edges(3, &[(0, 1)]);
        let s = simrank_matrix(&g, &SimRankConfig::default());
        assert_eq!(s[2], 0.0); // (0,2)
        assert_eq!(s[3 + 2], 0.0); // (1,2)
        assert_eq!(s[2 * 3 + 2], 1.0); // (2,2) by definition
    }

    #[test]
    fn first_iteration_hand_value() {
        // Path 0-1-2: after one iteration sim(0,2) = C · sim(1,1) = C.
        let g = KnowledgeGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let s = simrank_matrix(
            &g,
            &SimRankConfig {
                decay: 0.6,
                iters: 1,
            },
        );
        assert!((s[2] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn scores_bounded_by_one() {
        let g = KnowledgeGraph::from_edges(
            6,
            &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        );
        let s = simrank_matrix(
            &g,
            &SimRankConfig {
                decay: 0.9,
                iters: 10,
            },
        );
        for &v in &s {
            assert!((0.0..=1.0 + 1e-9).contains(&v), "score {v} out of range");
        }
    }
}
