//! Enclosing-subgraph extraction around a target node pair (SEAL §III-A).
//!
//! For a candidate link `(a, b)` we take the k-hop neighborhoods of both
//! endpoints and keep either their union (default) or their intersection
//! (used for PrimeKG, where hub degrees make unions too large), optionally
//! capping how many new nodes each hop may add (SEAL's `max_nodes_per_hop`).
//! Every edge *directly joining* `a` and `b` is excluded from the induced
//! subgraph — the model must not see the link it is asked to classify.

use crate::bfs::UNREACHABLE;
use crate::drnl::drnl_labels;
use crate::graph::{GraphBuilder, KnowledgeGraph};
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
use std::collections::HashMap;
use std::collections::VecDeque;

/// How the two endpoint neighborhoods are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeighborhoodMode {
    /// `{a, b} ∪ N_k(a) ∪ N_k(b)` — the SEAL default.
    Union,
    /// `{a, b} ∪ (N_k(a) ∩ N_k(b))` — nodes on short a↔b paths only;
    /// keeps subgraphs small on hub-dominated graphs (paper §III-A).
    Intersection,
}

/// Extraction parameters.
#[derive(Debug, Clone, Copy)]
pub struct SubgraphConfig {
    /// Neighborhood radius `k` (the paper uses 2).
    pub hops: u32,
    /// Union or intersection of the two neighborhoods.
    pub mode: NeighborhoodMode,
    /// Cap on nodes admitted per hop per endpoint; `None` = unlimited.
    pub max_nodes_per_hop: Option<usize>,
    /// Seed for the per-hop subsampling (ignored when no cap is hit).
    pub seed: u64,
}

impl Default for SubgraphConfig {
    fn default() -> Self {
        Self {
            hops: 2,
            mode: NeighborhoodMode::Union,
            max_nodes_per_hop: None,
            seed: 0,
        }
    }
}

/// An edge of the extracted subgraph in local indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalEdge {
    /// Local index of one endpoint.
    pub u: u32,
    /// Local index of the other endpoint.
    pub v: u32,
    /// Edge type inherited from the parent graph.
    pub etype: u16,
}

/// The induced subgraph around a target pair before structural labeling —
/// the output of [`extract_neighborhood`] and the input to
/// [`label_with_drnl`]. The split lets callers time (or parallelize) the
/// k-hop walk and the labeling pass separately.
///
/// Local index 0 is always target `a` and local index 1 target `b`.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// Original node id per local index.
    pub nodes: Vec<u32>,
    /// Node type per local index (copied from the parent graph).
    pub node_types: Vec<u16>,
    /// Induced edges (excluding the target link) in local indices.
    pub edges: Vec<LocalEdge>,
}

/// The enclosing subgraph of a target pair, fully labeled.
///
/// Local index 0 is always target `a` and local index 1 target `b`.
#[derive(Debug, Clone)]
pub struct EnclosingSubgraph {
    /// Original node id per local index.
    pub nodes: Vec<u32>,
    /// Node type per local index (copied from the parent graph).
    pub node_types: Vec<u16>,
    /// Induced edges (excluding the target link) in local indices.
    pub edges: Vec<LocalEdge>,
    /// Hop distance to target `a` within the subgraph (target link removed).
    pub dist_a: Vec<u32>,
    /// Hop distance to target `b` within the subgraph (target link removed).
    pub dist_b: Vec<u32>,
    /// DRNL label per local node.
    pub drnl: Vec<u32>,
}

impl EnclosingSubgraph {
    /// Number of nodes in the subgraph.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of induced edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Materialize as a standalone [`KnowledgeGraph`] (local ids).
    pub fn to_graph(&self) -> KnowledgeGraph {
        let mut b = GraphBuilder::with_node_types(self.node_types.clone());
        for e in &self.edges {
            b.add_edge(e.u, e.v, e.etype);
        }
        b.build()
    }
}

/// K-hop reachable set from `source` with an optional per-hop admission cap.
/// Returns original node ids (excluding nodes pruned by the cap).
fn capped_khop(g: &KnowledgeGraph, source: u32, cfg: &SubgraphConfig, rng_salt: u64) -> Vec<u32> {
    let mut visited: HashMap<u32, u32> = HashMap::new();
    visited.insert(source, 0);
    let mut frontier = vec![source];
    for hop in 1..=cfg.hops {
        let mut next: Vec<u32> = Vec::new();
        for &u in &frontier {
            for v in g.neighbor_ids(u) {
                if !visited.contains_key(&v) && !next.contains(&v) {
                    next.push(v);
                }
            }
        }
        if let Some(cap) = cfg.max_nodes_per_hop {
            if next.len() > cap {
                // Deterministic subsample: the RNG is derived from the
                // config seed, the endpoint, and the hop index.
                let mut rng = StdRng::seed_from_u64(
                    cfg.seed ^ rng_salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ hop as u64,
                );
                next.shuffle(&mut rng);
                next.truncate(cap);
                next.sort_unstable();
            }
        }
        for &v in &next {
            visited.insert(v, hop);
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    let mut out: Vec<u32> = visited.into_keys().collect();
    out.sort_unstable();
    out
}

/// Extract the enclosing subgraph of the pair `(a, b)`.
///
/// Equivalent to [`extract_neighborhood`] followed by [`label_with_drnl`];
/// callers that want per-phase timing call the two halves directly.
///
/// # Panics
/// Panics if `a == b` or either id is out of range.
pub fn extract_enclosing_subgraph(
    g: &KnowledgeGraph,
    a: u32,
    b: u32,
    cfg: &SubgraphConfig,
) -> EnclosingSubgraph {
    label_with_drnl(extract_neighborhood(g, a, b, cfg))
}

/// Phase 1 of enclosing-subgraph extraction: the capped k-hop walk from
/// both endpoints, neighborhood combination, and edge induction (with the
/// target link hidden). No structural labels yet — pass the result to
/// [`label_with_drnl`].
///
/// # Panics
/// Panics if `a == b` or either id is out of range.
pub fn extract_neighborhood(
    g: &KnowledgeGraph,
    a: u32,
    b: u32,
    cfg: &SubgraphConfig,
) -> InducedSubgraph {
    assert_ne!(a, b, "target endpoints must differ");
    assert!((a as usize) < g.num_nodes() && (b as usize) < g.num_nodes());

    let from_a = capped_khop(g, a, cfg, a as u64);
    let from_b = capped_khop(g, b, cfg, b as u64);

    let mut nodes: Vec<u32> = vec![a, b];
    let mut members: Vec<u32> = match cfg.mode {
        NeighborhoodMode::Union => {
            let mut m = from_a;
            m.extend_from_slice(&from_b);
            m.sort_unstable();
            m.dedup();
            m
        }
        NeighborhoodMode::Intersection => {
            // Both inputs are sorted: linear merge intersection.
            let mut m = Vec::new();
            let (mut i, mut j) = (0usize, 0usize);
            while i < from_a.len() && j < from_b.len() {
                match from_a[i].cmp(&from_b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        m.push(from_a[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            m
        }
    };
    members.retain(|&n| n != a && n != b);
    nodes.extend(members);

    let mut local_of: HashMap<u32, u32> = HashMap::with_capacity(nodes.len());
    for (i, &n) in nodes.iter().enumerate() {
        local_of.insert(n, i as u32);
    }

    // Induced edges, each original edge taken once (from its `u` side),
    // excluding every direct a-b edge.
    let mut edges = Vec::new();
    for &orig in &nodes {
        for &(_, eid) in g.neighbors(orig) {
            let e = g.edge(eid);
            if e.u != orig {
                continue; // visit each edge exactly once
            }
            if (e.u == a && e.v == b) || (e.u == b && e.v == a) {
                continue; // hide the target link
            }
            if let (Some(&lu), Some(&lv)) = (local_of.get(&e.u), local_of.get(&e.v)) {
                edges.push(LocalEdge {
                    u: lu,
                    v: lv,
                    etype: e.etype,
                });
            }
        }
    }

    let node_types = nodes.iter().map(|&n| g.node_type(n)).collect();
    InducedSubgraph {
        nodes,
        node_types,
        edges,
    }
}

/// Phase 2 of enclosing-subgraph extraction: BFS distances to both targets
/// within the induced subgraph (target link already hidden) and DRNL
/// labeling.
pub fn label_with_drnl(sub: InducedSubgraph) -> EnclosingSubgraph {
    let InducedSubgraph {
        nodes,
        node_types,
        edges,
    } = sub;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
    for e in &edges {
        adj[e.u as usize].push(e.v);
        if e.u != e.v {
            adj[e.v as usize].push(e.u);
        }
    }
    let dist_a = local_bfs(&adj, 0);
    let dist_b = local_bfs(&adj, 1);
    let drnl = drnl_labels(&dist_a, &dist_b);

    EnclosingSubgraph {
        nodes,
        node_types,
        edges,
        dist_a,
        dist_b,
        drnl,
    }
}

fn local_bfs(adj: &[Vec<u32>], source: usize) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; adj.len()];
    dist[source] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source as u32);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in &adj[u as usize] {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// 0-1-2-3-4 path with an extra 1-3 chord and types.
    fn chord_path() -> KnowledgeGraph {
        let mut b = GraphBuilder::with_node_types(vec![0, 1, 0, 1, 0]);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 2);
        b.add_edge(3, 4, 0);
        b.add_edge(1, 3, 3);
        b.build()
    }

    #[test]
    fn targets_come_first() {
        let g = chord_path();
        let s = extract_enclosing_subgraph(&g, 1, 3, &SubgraphConfig::default());
        assert_eq!(s.nodes[0], 1);
        assert_eq!(s.nodes[1], 3);
        assert_eq!(s.node_types[0], g.node_type(1));
        assert_eq!(s.drnl[0], 1);
        assert_eq!(s.drnl[1], 1);
    }

    #[test]
    fn target_edge_is_hidden() {
        let g = chord_path();
        let s = extract_enclosing_subgraph(&g, 1, 3, &SubgraphConfig::default());
        // No local edge may join locals 0 and 1 directly.
        for e in &s.edges {
            assert!(
                !((e.u == 0 && e.v == 1) || (e.u == 1 && e.v == 0)),
                "target link leaked into the subgraph"
            );
        }
        // But 1 and 3 stay connected through 2: distance 2.
        assert_eq!(s.dist_a[1], 2);
    }

    #[test]
    fn union_covers_k_hops_of_both() {
        let g = chord_path();
        let cfg = SubgraphConfig {
            hops: 1,
            ..Default::default()
        };
        let s = extract_enclosing_subgraph(&g, 0, 4, &cfg);
        // 1-hop of 0 = {0,1}; of 4 = {3,4}; union = {0,1,3,4}.
        let mut nodes = s.nodes.clone();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 3, 4]);
        // Edge 1-3 is induced, edges through missing node 2 are not.
        assert_eq!(s.num_edges(), 3); // (0,1), (3,4), (1,3)
    }

    #[test]
    fn intersection_keeps_only_shared_nodes() {
        let g = chord_path();
        let cfg = SubgraphConfig {
            hops: 1,
            mode: NeighborhoodMode::Intersection,
            ..Default::default()
        };
        // 1-hop of 1 = {0,1,2,3}; 1-hop of 3 = {1,2,3,4}; intersection =
        // {1,2,3}.
        let s = extract_enclosing_subgraph(&g, 1, 3, &cfg);
        let mut nodes = s.nodes.clone();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![1, 2, 3]);
    }

    #[test]
    fn intersection_always_contains_targets() {
        // Disconnected targets: intersection of neighborhoods is empty but
        // the targets themselves must stay.
        let g = KnowledgeGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let cfg = SubgraphConfig {
            mode: NeighborhoodMode::Intersection,
            ..Default::default()
        };
        let s = extract_enclosing_subgraph(&g, 0, 2, &cfg);
        assert_eq!(s.nodes.len(), 2);
        assert_eq!(s.drnl, vec![1, 1]);
        assert_eq!(s.dist_a[1], UNREACHABLE);
    }

    #[test]
    fn per_hop_cap_limits_growth() {
        // Star: center 0 with 20 leaves, plus node 21 connected to leaf 1.
        let mut b = GraphBuilder::new(22);
        for leaf in 1..=20 {
            b.add_edge(0, leaf, 0);
        }
        b.add_edge(1, 21, 0);
        let g = b.build();
        let cfg = SubgraphConfig {
            hops: 1,
            max_nodes_per_hop: Some(5),
            ..Default::default()
        };
        let s = extract_enclosing_subgraph(&g, 0, 21, &cfg);
        // At most 2 targets + 5 (hop of 0) + 1 (hop of 21, leaf 1 only).
        assert!(s.num_nodes() <= 8, "cap violated: {} nodes", s.num_nodes());
    }

    #[test]
    fn cap_sampling_is_deterministic() {
        let mut b = GraphBuilder::new(30);
        for leaf in 1..=28 {
            b.add_edge(0, leaf, 0);
        }
        b.add_edge(28, 29, 0);
        let g = b.build();
        let cfg = SubgraphConfig {
            hops: 2,
            max_nodes_per_hop: Some(6),
            seed: 7,
            ..Default::default()
        };
        let s1 = extract_enclosing_subgraph(&g, 0, 29, &cfg);
        let s2 = extract_enclosing_subgraph(&g, 0, 29, &cfg);
        assert_eq!(s1.nodes, s2.nodes);
        assert_eq!(s1.edges, s2.edges);
        let cfg2 = SubgraphConfig { seed: 8, ..cfg };
        let s3 = extract_enclosing_subgraph(&g, 0, 29, &cfg2);
        // Different seed usually samples different leaves (not guaranteed,
        // but with C(28,6) choices a collision would be astonishing).
        assert_ne!(s1.nodes, s3.nodes);
    }

    #[test]
    fn drnl_matches_manual_distances() {
        let g = chord_path();
        let s = extract_enclosing_subgraph(&g, 0, 4, &SubgraphConfig::default());
        // Subgraph is the whole path+chord; target edge (0,4) doesn't exist.
        for (i, &orig) in s.nodes.iter().enumerate() {
            let expect_a = crate::bfs::bfs_distances(&g, 0)[orig as usize];
            let expect_b = crate::bfs::bfs_distances(&g, 4)[orig as usize];
            assert_eq!(s.dist_a[i], expect_a, "node {orig} dist to a");
            assert_eq!(s.dist_b[i], expect_b, "node {orig} dist to b");
        }
    }

    #[test]
    fn to_graph_roundtrip() {
        let g = chord_path();
        let s = extract_enclosing_subgraph(&g, 1, 3, &SubgraphConfig::default());
        let local = s.to_graph();
        assert_eq!(local.num_nodes(), s.num_nodes());
        assert_eq!(local.num_edges(), s.num_edges());
        assert_eq!(local.node_type(0), g.node_type(1));
    }

    #[test]
    fn two_phase_extraction_matches_combined() {
        let g = chord_path();
        let cfg = SubgraphConfig::default();
        let combined = extract_enclosing_subgraph(&g, 1, 3, &cfg);
        let phased = label_with_drnl(extract_neighborhood(&g, 1, 3, &cfg));
        assert_eq!(combined.nodes, phased.nodes);
        assert_eq!(combined.node_types, phased.node_types);
        assert_eq!(combined.edges, phased.edges);
        assert_eq!(combined.dist_a, phased.dist_a);
        assert_eq!(combined.dist_b, phased.dist_b);
        assert_eq!(combined.drnl, phased.drnl);
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn same_endpoints_rejected() {
        let g = chord_path();
        let _ = extract_enclosing_subgraph(&g, 2, 2, &SubgraphConfig::default());
    }

    #[test]
    fn parallel_relations_between_targets_all_hidden() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 1, 1); // second relation between the same pair
        b.add_edge(1, 2, 0);
        b.add_edge(0, 2, 0);
        let g = b.build();
        let s = extract_enclosing_subgraph(&g, 0, 1, &SubgraphConfig::default());
        for e in &s.edges {
            assert!(!((e.u == 0 && e.v == 1) || (e.u == 1 && e.v == 0)));
        }
        assert_eq!(s.num_edges(), 2);
        assert_eq!(s.dist_a[1], 2, "connectivity must survive via node 2");
    }
}
