//! Katz index — the γ-decaying high-order heuristic the SEAL theory is
//! usually illustrated with: `Katz(u, v) = Σ_{l≥1} β^l · |walks_l(u, v)|`.
//!
//! We compute the truncated series with repeated sparse adjacency
//! applications ([`CsrMatrix::spmv_f64`]) of an indicator vector, which is
//! exact up to the truncation depth and never materializes an n×n matrix.
//! Walk counts are small integers, so the `f64` accumulation is exact.

use crate::graph::KnowledgeGraph;
use amdgcnn_tensor::CsrMatrix;

/// Adjacency operator `M[x][w] = #edges w → x` as a CSR matrix, so one
/// level of walk counting is `next = M · walks`. Multi-edges sum to their
/// multiplicity via [`CsrMatrix::from_triplets`] dedup.
fn adjacency(g: &KnowledgeGraph) -> CsrMatrix {
    let n = g.num_nodes();
    let mut triplets = Vec::new();
    for w in 0..n {
        for x in g.neighbor_ids(w as u32) {
            triplets.push((x as usize, w, 1.0f32));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// Katz parameters.
#[derive(Debug, Clone, Copy)]
pub struct KatzConfig {
    /// Decay β (must satisfy β < 1/λ_max for the infinite series to
    /// converge; the truncated series is always finite).
    pub beta: f64,
    /// Truncation depth (number of walk lengths summed).
    pub max_len: usize,
}

impl Default for KatzConfig {
    fn default() -> Self {
        Self {
            beta: 0.05,
            max_len: 6,
        }
    }
}

/// Truncated Katz index between `u` and `v`.
pub fn katz_score(g: &KnowledgeGraph, u: u32, v: u32, cfg: &KatzConfig) -> f64 {
    let n = g.num_nodes();
    let a = adjacency(g);
    // walks[w] = number of length-l walks u → w, updated per level.
    let mut walks = vec![0.0f64; n];
    walks[u as usize] = 1.0;
    let mut score = 0.0;
    let mut beta_pow = 1.0;
    for _ in 1..=cfg.max_len {
        beta_pow *= cfg.beta;
        walks = a.spmv_f64(&walks);
        score += beta_pow * walks[v as usize];
    }
    score
}

/// Katz centrality vector (truncated): `c = Σ_l β^l (Aᵀ)^l 1`.
pub fn katz_centrality(g: &KnowledgeGraph, cfg: &KatzConfig) -> Vec<f64> {
    let n = g.num_nodes();
    let a = adjacency(g);
    let mut walks = vec![1.0f64; n];
    let mut centrality = vec![0.0f64; n];
    let mut beta_pow = 1.0;
    for _ in 1..=cfg.max_len {
        beta_pow *= cfg.beta;
        walks = a.spmv_f64(&walks);
        for i in 0..n {
            centrality[i] += beta_pow * walks[i];
        }
    }
    centrality
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::KnowledgeGraph;

    #[test]
    fn single_edge_exact() {
        // Walks between endpoints of a single edge: lengths 1, 3, 5, ...
        // count 1 each (back-and-forth), so Katz = β + β³ + β⁵ (to depth 6).
        let g = KnowledgeGraph::from_edges(2, &[(0, 1)]);
        let cfg = KatzConfig {
            beta: 0.1,
            max_len: 6,
        };
        let expect = 0.1 + 0.1f64.powi(3) + 0.1f64.powi(5);
        assert!((katz_score(&g, 0, 1, &cfg) - expect).abs() < 1e-12);
    }

    #[test]
    fn triangle_walks() {
        // Triangle: length-2 walks between distinct nodes = 1 (via the third
        // node); length-1 = 1.
        let g = KnowledgeGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let cfg = KatzConfig {
            beta: 0.1,
            max_len: 2,
        };
        let expect = 0.1 + 0.01;
        assert!((katz_score(&g, 0, 1, &cfg) - expect).abs() < 1e-12);
    }

    #[test]
    fn disconnected_pair_is_zero() {
        let g = KnowledgeGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(katz_score(&g, 0, 2, &KatzConfig::default()), 0.0);
    }

    #[test]
    fn score_decays_with_distance() {
        let g = KnowledgeGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let cfg = KatzConfig::default();
        let s1 = katz_score(&g, 0, 1, &cfg);
        let s2 = katz_score(&g, 0, 2, &cfg);
        let s3 = katz_score(&g, 0, 3, &cfg);
        assert!(s1 > s2 && s2 > s3, "{s1} {s2} {s3}");
    }

    #[test]
    fn symmetric_on_undirected_graphs() {
        let g = KnowledgeGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 4)]);
        let cfg = KatzConfig::default();
        for (u, v) in [(0u32, 2u32), (1, 3), (0, 4)] {
            assert!((katz_score(&g, u, v, &cfg) - katz_score(&g, v, u, &cfg)).abs() < 1e-12);
        }
    }

    #[test]
    fn centrality_favors_hubs() {
        let mut b = crate::graph::GraphBuilder::new(5);
        for leaf in 1..5 {
            b.add_edge(0, leaf, 0);
        }
        let g = b.build();
        let c = katz_centrality(&g, &KatzConfig::default());
        for leaf in 1..5 {
            assert!(c[0] > c[leaf]);
        }
    }
}
