//! Breadth-first traversals: single-source shortest hop distances, bounded
//! variants, and the double-source distances that feed DRNL labeling.

use crate::graph::KnowledgeGraph;
use std::collections::VecDeque;

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Hop distances from `source` to every node (`UNREACHABLE` when no path).
pub fn bfs_distances(g: &KnowledgeGraph, source: u32) -> Vec<u32> {
    bfs_distances_bounded(g, source, u32::MAX)
}

/// Hop distances from `source`, exploring at most `max_depth` hops.
/// Nodes beyond the bound report `UNREACHABLE`.
pub fn bfs_distances_bounded(g: &KnowledgeGraph, source: u32, max_depth: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_nodes()];
    dist[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        if du >= max_depth {
            continue;
        }
        for v in g.neighbor_ids(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Hop distances from `source` while ignoring every edge whose id is in
/// `skip_edges` (used to hide the target link during subgraph labeling).
pub fn bfs_distances_skipping(
    g: &KnowledgeGraph,
    source: u32,
    skip_edges: &[u32],
    max_depth: u32,
) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_nodes()];
    dist[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        if du >= max_depth {
            continue;
        }
        for &(v, eid) in g.neighbors(u) {
            if skip_edges.contains(&eid) {
                continue;
            }
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Shortest hop distance between two nodes (`UNREACHABLE` when disconnected).
pub fn shortest_path_len(g: &KnowledgeGraph, u: u32, v: u32) -> u32 {
    bfs_distances(g, u)[v as usize]
}

/// Connected-component id per node, numbered in order of first discovery.
pub fn connected_components(g: &KnowledgeGraph) -> Vec<u32> {
    let mut comp = vec![u32::MAX; g.num_nodes()];
    let mut next = 0u32;
    for start in 0..g.num_nodes() as u32 {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = next;
        let mut queue = VecDeque::new();
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for v in g.neighbor_ids(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Number of connected components.
pub fn num_components(g: &KnowledgeGraph) -> usize {
    connected_components(g)
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m as usize + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Path graph 0-1-2-3 plus isolated node 4.
    fn path_plus_isolate() -> KnowledgeGraph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 0);
        b.add_edge(2, 3, 0);
        b.build()
    }

    #[test]
    fn distances_on_path() {
        let g = path_plus_isolate();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[..4], [0, 1, 2, 3]);
        assert_eq!(d[4], UNREACHABLE);
    }

    #[test]
    fn bounded_search_stops() {
        let g = path_plus_isolate();
        let d = bfs_distances_bounded(&g, 0, 2);
        assert_eq!(d[..4], [0, 1, 2, UNREACHABLE]);
    }

    #[test]
    fn skipping_edges_reroutes() {
        // Cycle 0-1-2-3-0: removing edge (0,1) makes d(0,1) = 3.
        let mut b = GraphBuilder::new(4);
        let e01 = b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 0);
        b.add_edge(2, 3, 0);
        b.add_edge(3, 0, 0);
        let g = b.build();
        assert_eq!(bfs_distances(&g, 0)[1], 1);
        let d = bfs_distances_skipping(&g, 0, &[e01], u32::MAX);
        assert_eq!(d[1], 3);
        assert_eq!(d[3], 1);
    }

    #[test]
    fn skipping_respects_parallel_edges() {
        // Two parallel edges between 0 and 1: skipping only one leaves the
        // pair adjacent.
        let mut b = GraphBuilder::new(2);
        let e0 = b.add_edge(0, 1, 0);
        b.add_edge(0, 1, 1);
        let g = b.build();
        let d = bfs_distances_skipping(&g, 0, &[e0], u32::MAX);
        assert_eq!(d[1], 1);
        let both = bfs_distances_skipping(&g, 0, &[e0, 1], u32::MAX);
        assert_eq!(both[1], UNREACHABLE);
    }

    #[test]
    fn shortest_path_between_pairs() {
        let g = path_plus_isolate();
        assert_eq!(shortest_path_len(&g, 0, 3), 3);
        assert_eq!(shortest_path_len(&g, 2, 2), 0);
        assert_eq!(shortest_path_len(&g, 0, 4), UNREACHABLE);
    }

    #[test]
    fn components() {
        let g = path_plus_isolate();
        let c = connected_components(&g);
        assert_eq!(c[0], c[3]);
        assert_ne!(c[0], c[4]);
        assert_eq!(num_components(&g), 2);
    }

    #[test]
    fn bfs_on_empty_graph() {
        let g = KnowledgeGraph::from_edges(1, &[]);
        assert_eq!(bfs_distances(&g, 0), vec![0]);
        assert_eq!(num_components(&g), 1);
    }
}
