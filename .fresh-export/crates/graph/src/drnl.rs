//! Double-Radius Node Labeling (Zhang & Chen, 2018), as used by SEAL and
//! this paper (§II-B).
//!
//! Every node of an enclosing subgraph is labeled from its hop distances
//! `(x, y)` to the two target nodes, computed with the target link removed.
//! The two targets receive the distinguished label 1 and nodes unreachable
//! from either target receive the null label 0.
//!
//! Note on the formula: the paper prints
//! `D(x,y) = 1 + min(x,y) + (x+y)[(x+y)/2 + (x+y)%2 − 1]/2`,
//! which under integer arithmetic collides (e.g. `D(2,3) = D(1,5) = 8`).
//! We implement the original SEAL definition
//! `f(x,y) = 1 + min(x,y) + (s/2)·(s/2 + s%2 − 1)` with `s = x + y`,
//! which is the injective mapping the printed variant is transcribing.

use crate::bfs::UNREACHABLE;

/// DRNL label for hop distances `x` (to target a) and `y` (to target b).
///
/// Either input being [`UNREACHABLE`] yields the null label 0. `(0, _)` or
/// `(_, 0)` identifies a target node and yields 1.
pub fn drnl_label(x: u32, y: u32) -> u32 {
    // Target nodes keep their distinctive label even when the other target
    // is unreachable (a target is always "reachable from itself").
    if x == 0 || y == 0 {
        return 1;
    }
    if x == UNREACHABLE || y == UNREACHABLE {
        return 0;
    }
    let s = x + y;
    let half = s / 2;
    1 + x.min(y) + half * (half + s % 2 - 1)
}

/// Label a whole subgraph given per-node distances to the two targets.
pub fn drnl_labels(dist_a: &[u32], dist_b: &[u32]) -> Vec<u32> {
    assert_eq!(dist_a.len(), dist_b.len(), "distance arrays must align");
    dist_a
        .iter()
        .zip(dist_b.iter())
        .map(|(&x, &y)| drnl_label(x, y))
        .collect()
}

/// Largest label achievable when both distances are at most `max_hops`
/// (useful for sizing one-hot encodings).
pub fn max_drnl_label(max_hops: u32) -> u32 {
    let mut best = 1;
    for x in 1..=max_hops {
        for y in 1..=max_hops {
            best = best.max(drnl_label(x, y));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_get_one() {
        assert_eq!(drnl_label(0, 1), 1);
        assert_eq!(drnl_label(1, 0), 1);
        assert_eq!(drnl_label(0, 0), 1);
    }

    #[test]
    fn unreachable_gets_zero() {
        assert_eq!(drnl_label(UNREACHABLE, 2), 0);
        assert_eq!(drnl_label(3, UNREACHABLE), 0);
        assert_eq!(drnl_label(UNREACHABLE, UNREACHABLE), 0);
    }

    #[test]
    fn seal_reference_values() {
        // Hand-computed from f(x,y) = 1 + min + (s/2)(s/2 + s%2 - 1).
        assert_eq!(drnl_label(1, 1), 2);
        assert_eq!(drnl_label(1, 2), 3);
        assert_eq!(drnl_label(2, 1), 3);
        assert_eq!(drnl_label(1, 3), 4);
        assert_eq!(drnl_label(2, 2), 5);
        assert_eq!(drnl_label(1, 4), 6);
        assert_eq!(drnl_label(2, 3), 7);
        assert_eq!(drnl_label(1, 5), 8);
        assert_eq!(drnl_label(2, 4), 9);
        assert_eq!(drnl_label(3, 3), 10);
    }

    #[test]
    fn symmetric() {
        for x in 1..8u32 {
            for y in 1..8u32 {
                assert_eq!(drnl_label(x, y), drnl_label(y, x));
            }
        }
    }

    #[test]
    fn injective_over_unordered_pairs() {
        // Distinct unordered (x, y) pairs map to distinct labels.
        let mut seen = std::collections::HashMap::new();
        for x in 1..12u32 {
            for y in x..12u32 {
                let label = drnl_label(x, y);
                if let Some(prev) = seen.insert(label, (x, y)) {
                    panic!("collision: {prev:?} and {:?} both map to {label}", (x, y));
                }
            }
        }
    }

    #[test]
    fn max_label_bounds_observed_labels() {
        let m = max_drnl_label(5);
        for x in 1..=5u32 {
            for y in 1..=5u32 {
                assert!(drnl_label(x, y) <= m);
            }
        }
        // And the bound is attained.
        assert_eq!(max_drnl_label(1), drnl_label(1, 1));
    }

    #[test]
    fn labels_vector_form() {
        let la = [0, 1, 2, UNREACHABLE];
        let lb = [1, 1, 2, 2];
        assert_eq!(drnl_labels(&la, &lb), vec![1, 2, 5, 0]);
    }
}
