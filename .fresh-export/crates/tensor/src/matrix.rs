//! Dense row-major `f32` matrix.
//!
//! This is the storage type underneath every tensor in the workspace. It is
//! deliberately 2-D only: GNN workloads over enclosing subgraphs are
//! expressed entirely with node-major `[N, F]`, edge-major `[E, F]`, and
//! channel-major `[C, L]` matrices.

use std::fmt;

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix [{} x {}]", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            let ell = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ell)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Create a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Build a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Build a single-column matrix from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the raw row-major data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Extract column `c` as a `Vec`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        debug_assert!(c < self.cols);
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Reinterpret as a new shape with the same number of elements
    /// (row-major order preserved).
    ///
    /// # Panics
    /// Panics if element counts differ.
    pub fn reshaped(&self, rows: usize, cols: usize) -> Matrix {
        assert_eq!(
            rows * cols,
            self.data.len(),
            "reshape: {}x{} incompatible with {} elements",
            rows,
            cols,
            self.data.len()
        );
        Matrix {
            rows,
            cols,
            data: self.data.clone(),
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Elementwise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise combination of two same-shape matrices.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        self.assert_same_shape(other, "zip_map");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    /// Hadamard (elementwise) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// In-place elementwise accumulation: `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        self.assert_same_shape(other, "add_assign");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place scaled accumulation: `self += alpha * other` (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        self.assert_same_shape(other, "axpy");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, alpha: f32) -> Matrix {
        self.map(|v| v * alpha)
    }

    /// In-place scalar multiply.
    pub fn scale_inplace(&mut self, alpha: f32) {
        self.map_inplace(|v| v * alpha);
    }

    /// Add a `[1, C]` row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "add_row_broadcast: rhs must have 1 row");
        assert_eq!(row.cols, self.cols, "add_row_broadcast: column mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let dst = out.row_mut(r);
            for (d, &b) in dst.iter_mut().zip(row.data.iter()) {
                *d += b;
            }
        }
        out
    }

    /// Multiply each row `r` by the scalar `col[r]` (a `[R, 1]` column).
    pub fn mul_col_broadcast(&self, col: &Matrix) -> Matrix {
        assert_eq!(col.cols, 1, "mul_col_broadcast: rhs must have 1 column");
        assert_eq!(col.rows, self.rows, "mul_col_broadcast: row mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let s = col.data[r];
            for v in out.row_mut(r) {
                *v *= s;
            }
        }
        out
    }

    /// Sum over rows, producing a `[1, C]` row.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Sum over columns, producing a `[R, 1]` column.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty matrix).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty matrix).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum value in row `r` (first on ties).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute elementwise difference with another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        self.assert_same_shape(other, "max_abs_diff");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Horizontally concatenate matrices with equal row counts.
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols: empty input");
        let rows = parts[0].rows;
        for p in parts {
            assert_eq!(p.rows, rows, "concat_cols: row count mismatch");
        }
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                out.row_mut(r)[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Vertically concatenate matrices with equal column counts.
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows: empty input");
        let cols = parts[0].cols;
        let mut data = Vec::new();
        for p in parts {
            assert_eq!(p.cols, cols, "concat_rows: column count mismatch");
            data.extend_from_slice(&p.data);
        }
        let rows = data.len() / cols.max(1);
        Matrix::from_vec(rows, cols, data)
    }

    /// Gather rows by index into a new `[idx.len(), C]` matrix.
    ///
    /// # Panics
    /// Panics (in debug) when an index is out of bounds.
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (dst, &src) in idx.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Scatter-add rows: `out[idx[i]] += self[i]` with `out` having
    /// `out_rows` rows.
    pub fn scatter_add_rows(&self, idx: &[usize], out_rows: usize) -> Matrix {
        assert_eq!(
            idx.len(),
            self.rows,
            "scatter_add_rows: index length mismatch"
        );
        let mut out = Matrix::zeros(out_rows, self.cols);
        for (src, &dst) in idx.iter().enumerate() {
            let row = self.row(src);
            let orow = out.row_mut(dst);
            for (o, &v) in orow.iter_mut().zip(row.iter()) {
                *o += v;
            }
        }
        out
    }

    /// Row-wise softmax, overflow-safe: the row max is subtracted before
    /// exponentiating, so arbitrarily large logits cannot overflow `exp`.
    /// Degenerate rows whose normalizer is non-positive or non-finite
    /// (all-`-∞` logits, NaN inputs) fall back to the uniform distribution
    /// instead of emitting unnormalized garbage.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            Matrix::softmax_slice(out.row_mut(r));
        }
        out
    }

    /// In-place overflow-safe softmax over one contiguous slice; shared by
    /// [`Matrix::softmax_rows`] and the autograd segment softmax (GAT
    /// attention normalization). Subtracts the max before exponentiating;
    /// if the normalizer still comes out non-positive or non-finite, the
    /// slice becomes the uniform distribution — attention degrades to mean
    /// aggregation rather than poisoning downstream activations.
    pub(crate) fn softmax_slice(slice: &mut [f32]) {
        if slice.is_empty() {
            return;
        }
        let m = slice.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        // All-(-∞) rows have no finite max; skip straight to the fallback.
        let mut z = 0.0;
        if m.is_finite() {
            for v in slice.iter_mut() {
                *v = (*v - m).exp();
                z += *v;
            }
        }
        if z > 0.0 && z.is_finite() {
            for v in slice.iter_mut() {
                *v /= z;
            }
        } else {
            let uniform = 1.0 / slice.len() as f32;
            slice.fill(uniform);
        }
    }

    fn assert_same_shape(&self, other: &Matrix, ctx: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{ctx}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_shapes() {
        assert_eq!(Matrix::zeros(2, 3).shape(), (2, 3));
        assert_eq!(Matrix::ones(3, 1).sum(), 3.0);
        assert_eq!(Matrix::full(2, 2, 7.0).get(1, 1), 7.0);
        let e = Matrix::eye(3);
        assert_eq!(e.get(0, 0), 1.0);
        assert_eq!(e.get(0, 1), 0.0);
        assert_eq!(e.sum(), 3.0);
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (4, 3));
        assert_eq!(t.get(2, 1), m.get(1, 2));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0, 33.0, 44.0]);
        assert_eq!(b.sub(&a).data(), &[9.0, 18.0, 27.0, 36.0]);
        assert_eq!(a.hadamard(&b).data(), &[10.0, 40.0, 90.0, 160.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c.data(), &[6.0, 12.0, 18.0, 24.0]);
    }

    #[test]
    fn broadcasts() {
        let a = Matrix::from_vec(2, 3, vec![1.0; 6]);
        let bias = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let out = a.add_row_broadcast(&bias);
        assert_eq!(out.row(0), &[2.0, 3.0, 4.0]);
        assert_eq!(out.row(1), &[2.0, 3.0, 4.0]);

        let col = Matrix::col_vector(&[2.0, -1.0]);
        let out = a.mul_col_broadcast(&col);
        assert_eq!(out.row(0), &[2.0, 2.0, 2.0]);
        assert_eq!(out.row(1), &[-1.0, -1.0, -1.0]);
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.sum(), 21.0);
        assert_eq!(m.mean(), 3.5);
        assert_eq!(m.sum_rows().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(m.sum_cols().data(), &[6.0, 15.0]);
        assert_eq!(m.max(), 6.0);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.argmax_row(1), 2);
    }

    #[test]
    fn concat() {
        let a = Matrix::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let h = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(h.row(1), &[2.0, 5.0, 6.0]);

        let v = Matrix::concat_rows(&[&b, &b]);
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.row(3), &[5.0, 6.0]);
    }

    #[test]
    fn gather_scatter_are_adjoint_shapes() {
        let m = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let g = m.gather_rows(&[3, 0, 3]);
        assert_eq!(g.row(0), &[6.0, 7.0]);
        assert_eq!(g.row(1), &[0.0, 1.0]);
        assert_eq!(g.row(2), &[6.0, 7.0]);

        let s = g.scatter_add_rows(&[3, 0, 3], 4);
        assert_eq!(s.row(0), &[0.0, 1.0]);
        assert_eq!(s.row(3), &[12.0, 14.0]);
        assert_eq!(s.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn softmax_rows_normalizes() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1000.0, 0.0, 1000.0]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
        assert!(s.get(0, 2) > s.get(0, 1));
        assert!((s.get(1, 2) - 1.0).abs() < 1e-5);
        assert!(s.all_finite());
    }

    #[test]
    fn softmax_rows_survives_huge_logits() {
        // Without max subtraction exp(1e38) overflows to ∞ and the row
        // normalizes to NaN; the overflow-safe path must stay finite.
        let m = Matrix::from_vec(2, 3, vec![1e38, 1e38, -1e38, 3.4e38, 0.0, -3.4e38]);
        let s = m.softmax_rows();
        assert!(
            s.all_finite(),
            "huge logits must not overflow: {:?}",
            s.data()
        );
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
        assert!((s.get(0, 0) - 0.5).abs() < 1e-5);
        assert!(s.get(0, 2) < 1e-6);
        assert!((s.get(1, 0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_rows_degenerate_rows_fall_back_to_uniform() {
        // All -∞ (normalizer 0) and NaN-contaminated rows both degrade to
        // the uniform distribution instead of unnormalized garbage.
        let m = Matrix::from_vec(
            2,
            4,
            vec![
                f32::NEG_INFINITY,
                f32::NEG_INFINITY,
                f32::NEG_INFINITY,
                f32::NEG_INFINITY,
                f32::NAN,
                1.0,
                2.0,
                3.0,
            ],
        );
        let s = m.softmax_rows();
        assert!(s.all_finite());
        for r in 0..2 {
            for c in 0..4 {
                assert!((s.get(r, c) - 0.25).abs() < 1e-6, "({r},{c})");
            }
        }
    }

    #[test]
    fn reshape_preserves_row_major_order() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = m.reshaped(3, 2);
        assert_eq!(r.row(0), &[1.0, 2.0]);
        assert_eq!(r.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn norm_and_diff() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        let b = Matrix::from_vec(1, 2, vec![3.5, 4.0]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-6);
    }
}
