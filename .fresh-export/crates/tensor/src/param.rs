//! Trainable-parameter storage and gradient accumulation.
//!
//! Parameters live outside any tape in a [`ParamStore`]; per-sample tapes
//! reference them through cheap `Arc` clones, so an epoch's gradient pass
//! can fan samples out over rayon threads with the parameters shared
//! read-only. Gradients come back in [`GradStore`]s keyed by [`ParamId`] and
//! are reduced in deterministic sample order by the trainer.

use crate::matrix::Matrix;
use std::sync::Arc;

/// Stable identifier of a trainable parameter within a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub usize);

/// Owns all trainable parameters of a model.
#[derive(Clone, Debug, Default)]
pub struct ParamStore {
    values: Vec<Arc<Matrix>>,
    names: Vec<String>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new parameter and return its id.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let id = ParamId(self.values.len());
        self.values.push(Arc::new(value));
        self.names.push(name.into());
        id
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Shared handle to a parameter's current value.
    pub fn get(&self, id: ParamId) -> &Arc<Matrix> {
        &self.values[id.0]
    }

    /// Human-readable parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Replace a parameter's value.
    pub fn set(&mut self, id: ParamId, value: Matrix) {
        self.values[id.0] = Arc::new(value);
    }

    /// Mutate a parameter in place (clones only if a tape still holds it).
    pub fn update(&mut self, id: ParamId, f: impl FnOnce(&mut Matrix)) {
        f(Arc::make_mut(&mut self.values[id.0]));
    }

    /// Iterate over `(id, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Arc<Matrix>)> {
        self.values.iter().enumerate().map(|(i, v)| (ParamId(i), v))
    }

    /// Total number of scalar parameters.
    pub fn num_elements(&self) -> usize {
        self.values.iter().map(|m| m.len()).sum()
    }

    /// Sum of squared parameter values (for L2 regularization reporting).
    pub fn l2_norm_squared(&self) -> f32 {
        self.values
            .iter()
            .map(|m| m.data().iter().map(|v| v * v).sum::<f32>())
            .sum()
    }

    /// True when every scalar of every parameter is finite — the
    /// validity check the training watchdog runs on rollback checkpoints
    /// and the serving layer can run on loaded artifacts.
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(|m| m.all_finite())
    }
}

/// Accumulated gradients, indexed by [`ParamId`]. Entries stay `None` for
/// parameters that did not participate in the computation.
#[derive(Clone, Debug)]
pub struct GradStore {
    grads: Vec<Option<Matrix>>,
}

impl GradStore {
    /// Store sized for `n_params` parameters, all gradients absent.
    pub fn new(n_params: usize) -> Self {
        Self {
            grads: vec![None; n_params],
        }
    }

    /// Number of parameter slots.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// True if no slots exist.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Gradient for `id`, if any was accumulated.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.grads[id.0].as_ref()
    }

    /// Add `delta` into the slot for `id`.
    pub fn accumulate(&mut self, id: ParamId, delta: &Matrix) {
        match &mut self.grads[id.0] {
            Some(g) => g.add_assign(delta),
            slot => *slot = Some(delta.clone()),
        }
    }

    /// Merge another gradient store into this one (summing overlaps).
    pub fn merge(&mut self, other: &GradStore) {
        assert_eq!(
            self.grads.len(),
            other.grads.len(),
            "GradStore size mismatch"
        );
        for (i, g) in other.grads.iter().enumerate() {
            if let Some(g) = g {
                self.accumulate(ParamId(i), g);
            }
        }
    }

    /// Multiply every stored gradient by `alpha` (e.g. 1/batch for means).
    pub fn scale(&mut self, alpha: f32) {
        for g in self.grads.iter_mut().flatten() {
            g.scale_inplace(alpha);
        }
    }

    /// Global gradient norm over all stored entries.
    pub fn global_norm(&self) -> f32 {
        self.grads
            .iter()
            .flatten()
            .map(|g| g.data().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Clip by global norm: if the global norm exceeds `max_norm`, rescale
    /// all gradients so it equals `max_norm`. Returns the pre-clip norm.
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
        norm
    }

    /// True when every stored gradient is finite.
    pub fn all_finite(&self) -> bool {
        self.grads.iter().flatten().all(|g| g.all_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_get_set_roundtrip() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::eye(2));
        let b = store.register("b", Matrix::zeros(1, 2));
        assert_eq!(store.len(), 2);
        assert_eq!(store.name(w), "w");
        assert_eq!(store.get(w).get(0, 0), 1.0);
        store.set(b, Matrix::ones(1, 2));
        assert_eq!(store.get(b).sum(), 2.0);
        assert_eq!(store.num_elements(), 6);
    }

    #[test]
    fn update_in_place_and_shared_clone_semantics() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 1));
        let held = store.get(w).clone(); // simulates a tape holding the value
        store.update(w, |m| m.set(0, 0, 5.0));
        assert_eq!(store.get(w).get(0, 0), 5.0);
        assert_eq!(held.get(0, 0), 0.0, "tape's copy must stay unchanged");
    }

    #[test]
    fn grads_accumulate_and_merge() {
        let mut a = GradStore::new(2);
        a.accumulate(ParamId(0), &Matrix::ones(2, 2));
        a.accumulate(ParamId(0), &Matrix::ones(2, 2));
        assert_eq!(a.get(ParamId(0)).expect("slot 0").sum(), 8.0);
        assert!(a.get(ParamId(1)).is_none());

        let mut b = GradStore::new(2);
        b.accumulate(ParamId(1), &Matrix::full(1, 1, 3.0));
        a.merge(&b);
        assert_eq!(a.get(ParamId(1)).expect("slot 1").sum(), 3.0);
    }

    #[test]
    fn clip_global_norm_rescales() {
        let mut g = GradStore::new(1);
        g.accumulate(ParamId(0), &Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let pre = g.clip_global_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((g.global_norm() - 1.0).abs() < 1e-5);
        // Below the threshold nothing changes.
        let pre2 = g.clip_global_norm(10.0);
        assert!((pre2 - 1.0).abs() < 1e-5);
        assert!((g.global_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn store_finiteness_check_catches_poisoned_params() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::ones(2, 2));
        store.register("b", Matrix::zeros(1, 2));
        assert!(store.all_finite());
        store.update(w, |m| m.set(1, 1, f32::NAN));
        assert!(!store.all_finite());
        store.update(w, |m| m.set(1, 1, f32::INFINITY));
        assert!(!store.all_finite());
    }

    #[test]
    fn scale_applies_everywhere() {
        let mut g = GradStore::new(2);
        g.accumulate(ParamId(0), &Matrix::ones(1, 3));
        g.accumulate(ParamId(1), &Matrix::full(1, 1, 2.0));
        g.scale(0.5);
        assert_eq!(g.get(ParamId(0)).expect("slot").sum(), 1.5);
        assert_eq!(g.get(ParamId(1)).expect("slot").sum(), 1.0);
        assert!(g.all_finite());
    }
}
