//! Operation records stored on the tape. Each variant carries the parent
//! variable ids plus whatever forward-pass artifacts its backward rule needs
//! (permutations, masks, cached softmax probabilities, ...).

use crate::matrix::Matrix;
use crate::param::ParamId;
use crate::sparse::{CsrGraph, CsrMatrix};
use std::sync::Arc;

/// Index of a node on a [`super::tape::Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Raw node index (stable for the lifetime of the tape).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Configuration of a 1-D convolution node.
#[derive(Debug, Clone, Copy)]
pub struct Conv1dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel width.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
}

impl Conv1dSpec {
    /// Output length for an input of length `len`.
    pub fn out_len(&self, len: usize) -> usize {
        assert!(
            len >= self.kernel,
            "conv1d: input length {len} shorter than kernel {}",
            self.kernel
        );
        (len - self.kernel) / self.stride + 1
    }
}

/// A recorded operation.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // variant fields are documented at the variant level
pub enum Op {
    /// Constant input; no gradient flows past it.
    Leaf,
    /// Trainable-parameter leaf; gradient is routed to the [`ParamId`].
    Param(ParamId),
    /// `A · B`.
    MatMul(Var, Var),
    /// Elementwise `A + B` (same shapes).
    Add(Var, Var),
    /// Elementwise `A - B`.
    Sub(Var, Var),
    /// Hadamard product.
    Mul(Var, Var),
    /// `X + bias` where bias is `[1, C]`, broadcast over rows.
    AddRowBroadcast(Var, Var),
    /// `X * col` where col is `[R, 1]`, broadcast over columns.
    MulColBroadcast(Var, Var),
    /// `alpha * X`.
    Scale(Var, f32),
    /// `X + alpha` elementwise.
    AddScalar(Var, f32),
    /// Hyperbolic tangent.
    Tanh(Var),
    /// Rectified linear unit.
    Relu(Var),
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(Var, f32),
    /// Logistic sigmoid.
    Sigmoid(Var),
    /// Row-wise softmax.
    SoftmaxRows(Var),
    /// Horizontal concatenation; stores each part's width.
    ConcatCols(Vec<Var>),
    /// Row gather: `out[i] = src[idx[i]]`.
    GatherRows { src: Var, idx: Arc<Vec<usize>> },
    /// Row scatter-add: `out[idx[i]] += src[i]` into `out_rows` rows.
    ScatterAddRows {
        src: Var,
        idx: Arc<Vec<usize>>,
        out_rows: usize,
    },
    /// Softmax over contiguous row segments of an `[E, 1]` column
    /// (per-destination attention normalization).
    SegmentSoftmax {
        src: Var,
        segments: Arc<Vec<(usize, usize)>>,
    },
    /// Sparse-dense product `adj · H`. `adj_t` is the precomputed transpose
    /// used by the backward rule.
    SpMM {
        adj: Arc<CsrMatrix>,
        adj_t: Arc<CsrMatrix>,
        h: Var,
    },
    /// Edge-weighted g-SpMM `out[d] = Σ w[m]·h[src[m]]` with a *learnable*
    /// `[M, 1]` weight column (attention coefficients). Backward: the
    /// weight gradient is the g-SDDMM dot of the output gradient against
    /// `h`; the feature gradient is the transposed g-SpMM.
    GSpmm {
        graph: Arc<CsrGraph>,
        w: Var,
        h: Var,
    },
    /// Edge-weighted g-SpMM with *fixed* per-message weights (GCN
    /// symmetric norm, R-GCN relation masks, sum/mean reducers). Gradient
    /// flows only to the features, via the transposed kernel.
    GSpmmStatic {
        graph: Arc<CsrGraph>,
        w: Arc<Vec<f32>>,
        h: Var,
    },
    /// g-SDDMM (add flavor): per-message score from `[N, 1]` endpoint
    /// columns plus an optional `[M, 1]` message column. Backward scatters
    /// the message gradient onto sources / destinations.
    GSddmmAdd {
        graph: Arc<CsrGraph>,
        src: Var,
        dst: Var,
        edge: Option<Var>,
    },
    /// Weighted aggregation of per-message payload rows
    /// `out[d] = Σ w[m]·x[m]` with learnable `[M, 1]` weights and
    /// `[M, F]` payload (attended edge attributes).
    EdgeAggregate {
        graph: Arc<CsrGraph>,
        w: Var,
        x: Var,
    },
    /// Sum over rows → `[1, C]`.
    SumRows(Var),
    /// Mean of all elements → `[1, 1]`.
    MeanAll(Var),
    /// SortPooling (Zhang et al. 2018): rows sorted by the last channel,
    /// truncated/zero-padded to `k` rows. `perm[i]` is the source row placed
    /// at output row `i` (length `min(k, N)`).
    SortPool {
        src: Var,
        perm: Vec<usize>,
        k: usize,
    },
    /// 1-D convolution: input `[C_in, L]`, weight `[C_out, C_in*kernel]`,
    /// bias `[C_out, 1]` → `[C_out, L_out]`.
    Conv1d {
        input: Var,
        weight: Var,
        bias: Var,
        spec: Conv1dSpec,
    },
    /// Non-overlapping 1-D max pooling over `[C, L]` with window `size`.
    /// `argmax` records the flat input index chosen for each output element.
    MaxPool1d {
        src: Var,
        size: usize,
        argmax: Vec<usize>,
    },
    /// Row-major reshape (free).
    Reshape {
        src: Var,
        src_rows: usize,
        src_cols: usize,
    },
    /// Inverted dropout: forward multiplied by `mask` (0 or 1/keep).
    Dropout { src: Var, mask: Arc<Vec<f32>> },
    /// Fused mean softmax cross-entropy over logit rows with integer labels.
    /// `probs` caches the row-softmax for the backward rule.
    SoftmaxCrossEntropy {
        logits: Var,
        labels: Arc<Vec<usize>>,
        probs: Matrix,
    },
}

impl Op {
    /// Parent variables this op reads (for reachability analysis).
    pub fn parents(&self) -> Vec<Var> {
        match self {
            Op::Leaf | Op::Param(_) => vec![],
            Op::MatMul(a, b)
            | Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::AddRowBroadcast(a, b)
            | Op::MulColBroadcast(a, b) => vec![*a, *b],
            Op::Scale(a, _)
            | Op::AddScalar(a, _)
            | Op::Tanh(a)
            | Op::Relu(a)
            | Op::LeakyRelu(a, _)
            | Op::Sigmoid(a)
            | Op::SoftmaxRows(a)
            | Op::SumRows(a)
            | Op::MeanAll(a) => vec![*a],
            Op::ConcatCols(parts) => parts.clone(),
            Op::GatherRows { src, .. }
            | Op::ScatterAddRows { src, .. }
            | Op::SegmentSoftmax { src, .. }
            | Op::SortPool { src, .. }
            | Op::MaxPool1d { src, .. }
            | Op::Reshape { src, .. }
            | Op::Dropout { src, .. } => vec![*src],
            Op::SpMM { h, .. } => vec![*h],
            Op::GSpmm { w, h, .. } => vec![*w, *h],
            Op::GSpmmStatic { h, .. } => vec![*h],
            Op::GSddmmAdd { src, dst, edge, .. } => {
                let mut p = vec![*src, *dst];
                if let Some(e) = edge {
                    p.push(*e);
                }
                p
            }
            Op::EdgeAggregate { w, x, .. } => vec![*w, *x],
            Op::Conv1d {
                input,
                weight,
                bias,
                ..
            } => vec![*input, *weight, *bias],
            Op::SoftmaxCrossEntropy { logits, .. } => vec![*logits],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_spec_out_len() {
        let spec = Conv1dSpec {
            in_channels: 1,
            out_channels: 4,
            kernel: 3,
            stride: 3,
        };
        assert_eq!(spec.out_len(9), 3);
        assert_eq!(spec.out_len(10), 3);
        assert_eq!(spec.out_len(3), 1);
        let s2 = Conv1dSpec {
            in_channels: 2,
            out_channels: 2,
            kernel: 5,
            stride: 1,
        };
        assert_eq!(s2.out_len(5), 1);
        assert_eq!(s2.out_len(12), 8);
    }

    #[test]
    #[should_panic(expected = "conv1d")]
    fn conv_spec_rejects_short_input() {
        let spec = Conv1dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 5,
            stride: 1,
        };
        let _ = spec.out_len(4);
    }

    #[test]
    fn parents_enumeration() {
        let op = Op::MatMul(Var(3), Var(7));
        assert_eq!(op.parents(), vec![Var(3), Var(7)]);
        assert!(Op::Leaf.parents().is_empty());
        let cat = Op::ConcatCols(vec![Var(0), Var(1), Var(2)]);
        assert_eq!(cat.parents().len(), 3);
    }
}
