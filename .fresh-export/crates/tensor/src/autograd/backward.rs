//! Reverse-mode sweep over a recorded tape.
//!
//! Nodes only reference earlier nodes, so a single reverse iteration over
//! the arena visits every node after all of its consumers. Gradients for
//! intermediate nodes are dropped as soon as they have been propagated;
//! parameter gradients are collected into a [`GradStore`].

use super::op::Op;
use super::tape::Tape;
use crate::matmul::{matmul_nt, matmul_tn};
use crate::matrix::Matrix;
use crate::param::GradStore;

use super::op::Var;

impl Tape {
    /// Run the backward pass from `output`, seeding its gradient with ones
    /// (for the usual `[1, 1]` loss this is dL/dL = 1). Returns parameter
    /// gradients in a store sized for `n_params`.
    pub fn backward(&self, output: Var, n_params: usize) -> GradStore {
        let n = self.nodes.len();
        let mut grads: Vec<Option<Matrix>> = vec![None; n];
        let (r, c) = self.shape(output);
        grads[output.index()] = Some(Matrix::ones(r, c));
        let mut store = GradStore::new(n_params);

        for i in (0..n).rev() {
            let Some(g) = grads[i].take() else { continue };
            match &self.nodes[i].op {
                Op::Leaf => {}
                Op::Param(id) => store.accumulate(*id, &g),
                Op::MatMul(a, b) => {
                    let da = matmul_nt(&g, self.value(*b));
                    let db = matmul_tn(self.value(*a), &g);
                    acc(&mut grads, a.index(), da);
                    acc(&mut grads, b.index(), db);
                }
                Op::Add(a, b) => {
                    acc(&mut grads, a.index(), g.clone());
                    acc(&mut grads, b.index(), g);
                }
                Op::Sub(a, b) => {
                    acc(&mut grads, a.index(), g.clone());
                    acc(&mut grads, b.index(), g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let da = g.hadamard(self.value(*b));
                    let db = g.hadamard(self.value(*a));
                    acc(&mut grads, a.index(), da);
                    acc(&mut grads, b.index(), db);
                }
                Op::AddRowBroadcast(x, bias) => {
                    acc(&mut grads, bias.index(), g.sum_rows());
                    acc(&mut grads, x.index(), g);
                }
                Op::MulColBroadcast(x, col) => {
                    let dx = g.mul_col_broadcast(self.value(*col));
                    let dcol = g.hadamard(self.value(*x)).sum_cols();
                    acc(&mut grads, x.index(), dx);
                    acc(&mut grads, col.index(), dcol);
                }
                Op::Scale(x, alpha) => acc(&mut grads, x.index(), g.scale(*alpha)),
                Op::AddScalar(x, _) => acc(&mut grads, x.index(), g),
                Op::Tanh(x) => {
                    let y = self.nodes[i].value.as_matrix();
                    let dx = g.zip_map(y, |gi, yi| gi * (1.0 - yi * yi));
                    acc(&mut grads, x.index(), dx);
                }
                Op::Relu(x) => {
                    let dx = g.zip_map(self.value(*x), |gi, xi| if xi > 0.0 { gi } else { 0.0 });
                    acc(&mut grads, x.index(), dx);
                }
                Op::LeakyRelu(x, slope) => {
                    let s = *slope;
                    let dx = g.zip_map(self.value(*x), |gi, xi| if xi > 0.0 { gi } else { s * gi });
                    acc(&mut grads, x.index(), dx);
                }
                Op::Sigmoid(x) => {
                    let y = self.nodes[i].value.as_matrix();
                    let dx = g.zip_map(y, |gi, yi| gi * yi * (1.0 - yi));
                    acc(&mut grads, x.index(), dx);
                }
                Op::SoftmaxRows(x) => {
                    let y = self.nodes[i].value.as_matrix();
                    let mut dx = Matrix::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let yr = y.row(r);
                        let gr = g.row(r);
                        let dot: f32 = yr.iter().zip(gr.iter()).map(|(&a, &b)| a * b).sum();
                        let dr = dx.row_mut(r);
                        for c in 0..yr.len() {
                            dr[c] = yr[c] * (gr[c] - dot);
                        }
                    }
                    acc(&mut grads, x.index(), dx);
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let w = self.shape(*p).1;
                        let mut dp = Matrix::zeros(g.rows(), w);
                        for r in 0..g.rows() {
                            dp.row_mut(r).copy_from_slice(&g.row(r)[offset..offset + w]);
                        }
                        offset += w;
                        acc(&mut grads, p.index(), dp);
                    }
                }
                Op::GatherRows { src, idx } => {
                    let rows = self.shape(*src).0;
                    acc(&mut grads, src.index(), g.scatter_add_rows(idx, rows));
                }
                Op::ScatterAddRows { src, idx, .. } => {
                    acc(&mut grads, src.index(), g.gather_rows(idx));
                }
                Op::SegmentSoftmax { src, segments } => {
                    let y = self.nodes[i].value.as_matrix();
                    let mut dx = Matrix::zeros(y.rows(), 1);
                    for &(start, end) in segments.iter() {
                        let mut dot = 0.0f32;
                        for r in start..end {
                            dot += y.get(r, 0) * g.get(r, 0);
                        }
                        for r in start..end {
                            dx.set(r, 0, y.get(r, 0) * (g.get(r, 0) - dot));
                        }
                    }
                    acc(&mut grads, src.index(), dx);
                }
                Op::SpMM { adj_t, h, .. } => {
                    acc(&mut grads, h.index(), adj_t.spmm(&g));
                }
                Op::GSpmm { graph, w, h } => {
                    // dW is the g-SDDMM dot of the output gradient against
                    // the source features; dH is the transposed g-SpMM.
                    let dw = graph.sddmm_dot(&g, self.value(*h));
                    let dh = graph.spmm_ew_t(self.value(*w).data(), &g);
                    acc(&mut grads, w.index(), dw);
                    acc(&mut grads, h.index(), dh);
                }
                Op::GSpmmStatic { graph, w, h } => {
                    acc(&mut grads, h.index(), graph.spmm_ew_t(w, &g));
                }
                Op::GSddmmAdd {
                    graph,
                    src,
                    dst,
                    edge,
                } => {
                    acc(&mut grads, src.index(), graph.scatter_src(&g));
                    acc(&mut grads, dst.index(), graph.scatter_dst(&g));
                    if let Some(e) = edge {
                        acc(&mut grads, e.index(), g);
                    }
                }
                Op::EdgeAggregate { graph, w, x } => {
                    let dw = graph.sddmm_dot_edge(&g, self.value(*x));
                    let dx = graph.expand_dst(self.value(*w).data(), &g);
                    acc(&mut grads, w.index(), dw);
                    acc(&mut grads, x.index(), dx);
                }
                Op::SumRows(x) => {
                    let rows = self.shape(*x).0;
                    let mut dx = Matrix::zeros(rows, g.cols());
                    for r in 0..rows {
                        dx.row_mut(r).copy_from_slice(g.row(0));
                    }
                    acc(&mut grads, x.index(), dx);
                }
                Op::MeanAll(x) => {
                    let (r, c) = self.shape(*x);
                    let scale = g.get(0, 0) / (r * c).max(1) as f32;
                    acc(&mut grads, x.index(), Matrix::full(r, c, scale));
                }
                Op::SortPool { src, perm, .. } => {
                    let (rows, cols) = self.shape(*src);
                    let mut dx = Matrix::zeros(rows, cols);
                    for (out_row, &src_row) in perm.iter().enumerate() {
                        let grow = g.row(out_row);
                        let drow = dx.row_mut(src_row);
                        for (d, &gv) in drow.iter_mut().zip(grow.iter()) {
                            *d += gv;
                        }
                    }
                    acc(&mut grads, src.index(), dx);
                }
                Op::Conv1d {
                    input,
                    weight,
                    bias,
                    spec,
                } => {
                    let x = self.value(*input);
                    let w = self.value(*weight);
                    let l = x.cols();
                    let l_out = spec.out_len(l);
                    let mut dx = Matrix::zeros(spec.in_channels, l);
                    let mut dw = Matrix::zeros(spec.out_channels, spec.in_channels * spec.kernel);
                    let mut db = Matrix::zeros(spec.out_channels, 1);
                    for o in 0..spec.out_channels {
                        let wrow = w.row(o);
                        let grow = g.row(o);
                        let mut bsum = 0.0f32;
                        for (t, &gv) in grow.iter().enumerate().take(l_out) {
                            if gv == 0.0 {
                                continue;
                            }
                            bsum += gv;
                            let start = t * spec.stride;
                            for ci in 0..spec.in_channels {
                                let base = ci * spec.kernel;
                                let xrow = x.row(ci);
                                for kk in 0..spec.kernel {
                                    dw.data_mut()
                                        [o * spec.in_channels * spec.kernel + base + kk] +=
                                        gv * xrow[start + kk];
                                    dx.data_mut()[ci * l + start + kk] += gv * wrow[base + kk];
                                }
                            }
                        }
                        db.set(o, 0, db.get(o, 0) + bsum);
                    }
                    acc(&mut grads, input.index(), dx);
                    acc(&mut grads, weight.index(), dw);
                    acc(&mut grads, bias.index(), db);
                }
                Op::MaxPool1d { src, argmax, .. } => {
                    let (rows, cols) = self.shape(*src);
                    let mut dx = Matrix::zeros(rows, cols);
                    for (flat_out, &flat_in) in argmax.iter().enumerate() {
                        let gv = g.data()[flat_out];
                        dx.data_mut()[flat_in] += gv;
                    }
                    acc(&mut grads, src.index(), dx);
                }
                Op::Reshape {
                    src,
                    src_rows,
                    src_cols,
                } => {
                    acc(&mut grads, src.index(), g.reshaped(*src_rows, *src_cols));
                }
                Op::Dropout { src, mask } => {
                    let mut dx = g.clone();
                    for (d, &m) in dx.data_mut().iter_mut().zip(mask.iter()) {
                        *d *= m;
                    }
                    acc(&mut grads, src.index(), dx);
                }
                Op::SoftmaxCrossEntropy {
                    logits,
                    labels,
                    probs,
                } => {
                    let scale = g.get(0, 0) / labels.len().max(1) as f32;
                    let mut dl = probs.clone();
                    for (r, &y) in labels.iter().enumerate() {
                        dl.set(r, y, dl.get(r, y) - 1.0);
                    }
                    dl.scale_inplace(scale);
                    acc(&mut grads, logits.index(), dl);
                }
            }
        }
        store
    }
}

#[inline]
fn acc(grads: &mut [Option<Matrix>], idx: usize, delta: Matrix) {
    match &mut grads[idx] {
        Some(g) => g.add_assign(&delta),
        slot => *slot = Some(delta),
    }
}
