//! Tape-based reverse-mode automatic differentiation.
//!
//! One [`Tape`] records one sample's forward pass; [`Tape::backward`]
//! produces parameter gradients in a [`crate::param::GradStore`]. Tapes are
//! single-threaded and created per sample, which lets a trainer fan samples
//! out over rayon workers with zero shared mutable state.

mod backward;
pub mod gradcheck;
mod op;
mod tape;

pub use op::{Conv1dSpec, Op, Var};
pub use tape::Tape;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::param::ParamStore;
    use std::sync::Arc;

    /// End-to-end: d/dw of mean((w·x + b)²) with hand-computed values.
    #[test]
    fn linear_quadratic_exact_gradient() {
        let mut params = ParamStore::new();
        let w = params.register("w", Matrix::from_vec(1, 1, vec![3.0]));
        let b = params.register("b", Matrix::from_vec(1, 1, vec![1.0]));

        let mut tape = Tape::new();
        let wv = tape.param(w, params.get(w).clone());
        let bv = tape.param(b, params.get(b).clone());
        let x = tape.leaf(Matrix::from_vec(1, 1, vec![2.0]));
        let wx = tape.mul(wv, x);
        let y = tape.add(wx, bv); // y = 3*2 + 1 = 7
        let y2 = tape.mul(y, y); // 49
        let loss = tape.mean_all(y2);
        assert_eq!(tape.value(loss).get(0, 0), 49.0);

        let grads = tape.backward(loss, params.len());
        // dL/dw = 2*y*x = 2*7*2 = 28 ; dL/db = 2*y = 14.
        assert!((grads.get(w).expect("w grad").get(0, 0) - 28.0).abs() < 1e-4);
        assert!((grads.get(b).expect("b grad").get(0, 0) - 14.0).abs() < 1e-4);
    }

    /// Gradient flows through a diamond (value used twice) and sums.
    #[test]
    fn diamond_reuse_accumulates() {
        let mut params = ParamStore::new();
        let w = params.register("w", Matrix::from_vec(1, 1, vec![5.0]));
        let mut tape = Tape::new();
        let wv = tape.param(w, params.get(w).clone());
        let a = tape.scale(wv, 2.0);
        let b = tape.scale(wv, 3.0);
        let s = tape.add(a, b); // 5w
        let loss = tape.mean_all(s);
        let grads = tape.backward(loss, 1);
        assert!((grads.get(crate::param::ParamId(0)).expect("grad").get(0, 0) - 5.0).abs() < 1e-5);
    }

    /// Cross-entropy + softmax gradient: probs - onehot.
    #[test]
    fn cross_entropy_gradient_shape_and_value() {
        let mut params = ParamStore::new();
        let w = params.register("logits", Matrix::from_vec(1, 3, vec![1.0, 0.0, -1.0]));
        let mut tape = Tape::new();
        let l = tape.param(w, params.get(w).clone());
        let loss = tape.softmax_cross_entropy(l, Arc::new(vec![0]));
        let grads = tape.backward(loss, 1);
        let g = grads.get(crate::param::ParamId(0)).expect("grad");
        let probs = Matrix::from_vec(1, 3, vec![1.0, 0.0, -1.0]).softmax_rows();
        assert!((g.get(0, 0) - (probs.get(0, 0) - 1.0)).abs() < 1e-5);
        assert!((g.get(0, 1) - probs.get(0, 1)).abs() < 1e-5);
        assert!((g.get(0, 2) - probs.get(0, 2)).abs() < 1e-5);
        // Gradient of softmax CE sums to zero across classes.
        assert!(g.sum().abs() < 1e-5);
    }

    /// Unused parameters get no gradient entry.
    #[test]
    fn unused_param_has_no_grad() {
        let mut params = ParamStore::new();
        let used = params.register("used", Matrix::ones(1, 1));
        let unused = params.register("unused", Matrix::ones(1, 1));
        let mut tape = Tape::new();
        let u = tape.param(used, params.get(used).clone());
        let loss = tape.mean_all(u);
        let grads = tape.backward(loss, params.len());
        assert!(grads.get(used).is_some());
        assert!(grads.get(unused).is_none());
    }
}
