//! Finite-difference gradient checking.
//!
//! Used throughout the workspace's test suites to validate every autodiff
//! rule and every layer: the analytic gradient from [`Tape::backward`] is
//! compared against central differences of the loss as a function of each
//! parameter element.

use super::op::Var;
use super::tape::Tape;
use crate::param::{ParamId, ParamStore};

/// Outcome of a failed comparison.
#[derive(Debug, Clone)]
pub struct GradMismatch {
    /// Which parameter disagreed.
    pub param: ParamId,
    /// Flat element index within the parameter.
    pub element: usize,
    /// Analytic (autodiff) derivative.
    pub analytic: f32,
    /// Numeric (central-difference) derivative.
    pub numeric: f32,
    /// Relative error.
    pub rel_error: f32,
}

impl std::fmt::Display for GradMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "param {:?} element {}: analytic {} vs numeric {} (rel err {})",
            self.param, self.element, self.analytic, self.numeric, self.rel_error
        )
    }
}

/// Evaluate a scalar loss defined by `build` at the given parameters.
fn eval_loss(params: &ParamStore, build: &impl Fn(&mut Tape, &ParamStore) -> Var) -> f32 {
    let mut tape = Tape::new();
    let out = build(&mut tape, params);
    let v = tape.value(out);
    assert_eq!(v.shape(), (1, 1), "gradient check requires a scalar loss");
    v.get(0, 0)
}

/// Check autodiff gradients of a scalar loss against central finite
/// differences for every element of every parameter.
///
/// `build` must construct the loss on the provided tape reading parameter
/// values from the store (via [`Tape::param`]), so that re-invoking it with
/// perturbed parameters re-evaluates the same function.
pub fn check_gradients(
    params: &ParamStore,
    build: impl Fn(&mut Tape, &ParamStore) -> Var,
    eps: f32,
    tol: f32,
) -> Result<(), GradMismatch> {
    // Analytic pass.
    let mut tape = Tape::new();
    let out = build(&mut tape, params);
    assert_eq!(
        tape.value(out).shape(),
        (1, 1),
        "gradient check requires a scalar loss"
    );
    let grads = tape.backward(out, params.len());

    for (id, value) in params.iter() {
        for e in 0..value.len() {
            let orig = value.data()[e];

            let mut plus = params.clone();
            plus.update(id, |m| m.data_mut()[e] = orig + eps);
            let lp = eval_loss(&plus, &build);

            let mut minus = params.clone();
            minus.update(id, |m| m.data_mut()[e] = orig - eps);
            let lm = eval_loss(&minus, &build);

            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads.get(id).map(|g| g.data()[e]).unwrap_or(0.0);
            let denom = 1.0f32.max(analytic.abs()).max(numeric.abs());
            let rel = (analytic - numeric).abs() / denom;
            if rel > tol {
                return Err(GradMismatch {
                    param: id,
                    element: e,
                    analytic,
                    numeric,
                    rel_error: rel,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn passes_for_correct_gradient() {
        // loss = mean((W · x)²) — smooth everywhere.
        let mut params = ParamStore::new();
        let w = params.register("w", Matrix::from_vec(2, 2, vec![0.3, -0.2, 0.5, 0.7]));
        let x = Matrix::from_vec(2, 1, vec![1.0, -2.0]);
        let result = check_gradients(
            &params,
            |tape, ps| {
                let wv = tape.param(w, ps.get(w).clone());
                let xv = tape.leaf(x.clone());
                let y = tape.matmul(wv, xv);
                let y2 = tape.mul(y, y);
                tape.mean_all(y2)
            },
            1e-2,
            2e-2,
        );
        assert!(result.is_ok(), "{result:?}");
    }

    #[test]
    fn detects_wrong_gradient() {
        // A loss whose "build" sneaks in a dependence the analytic pass
        // cannot see: treat the parameter as a leaf. The analytic gradient is
        // then zero while the numeric one is not.
        let mut params = ParamStore::new();
        let w = params.register("w", Matrix::from_vec(1, 1, vec![2.0]));
        let result = check_gradients(
            &params,
            |tape, ps| {
                let leaf = tape.leaf((**ps.get(w)).clone()); // wrong: hides the param
                tape.mean_all(leaf)
            },
            1e-2,
            1e-3,
        );
        assert!(
            result.is_err(),
            "gradient check failed to detect a wrong gradient"
        );
    }
}
