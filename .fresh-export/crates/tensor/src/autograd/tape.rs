//! The autodiff tape: an append-only arena of operation nodes.
//!
//! A tape records one sample's forward computation; ops only ever reference
//! earlier nodes, so creation order is a topological order and the backward
//! pass is a single reverse sweep. Tapes are cheap, single-threaded, and
//! created per sample — the data-parallel trainer builds one tape per
//! subgraph on each rayon worker.

use super::op::{Conv1dSpec, Op, Var};
use crate::matmul::matmul;
use crate::matrix::Matrix;
use crate::param::ParamId;
use crate::sparse::{CsrGraph, CsrMatrix, Reduce};
use std::sync::Arc;

/// A node's stored value: computed matrices are owned; parameter leaves
/// share the `ParamStore`'s allocation.
#[derive(Debug, Clone)]
pub(crate) enum Value {
    Owned(Matrix),
    Shared(Arc<Matrix>),
}

impl Value {
    #[inline]
    pub(crate) fn as_matrix(&self) -> &Matrix {
        match self {
            Value::Owned(m) => m,
            Value::Shared(m) => m,
        }
    }
}

pub(crate) struct Node {
    pub(crate) value: Value,
    pub(crate) op: Op,
}

/// Append-only computation record with forward constructors for every op.
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
}

impl Tape {
    /// Fresh empty tape.
    pub fn new() -> Self {
        Self {
            nodes: Vec::with_capacity(64),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a recorded variable.
    pub fn value(&self, v: Var) -> &Matrix {
        self.nodes[v.0].value.as_matrix()
    }

    /// Shape of a recorded variable.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.value(v).shape()
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node {
            value: Value::Owned(value),
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Record a constant input (no gradient).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Record a constant input shared via `Arc` — no copy is made, so
    /// per-sample payloads (expanded edge attributes) can be mounted onto
    /// many tapes cheaply.
    pub fn shared_leaf(&mut self, value: Arc<Matrix>) -> Var {
        self.nodes.push(Node {
            value: Value::Shared(value),
            op: Op::Leaf,
        });
        Var(self.nodes.len() - 1)
    }

    /// Record a trainable-parameter leaf. The `Arc` is shared with the
    /// `ParamStore`, so no copy is made.
    pub fn param(&mut self, id: ParamId, value: Arc<Matrix>) -> Var {
        self.nodes.push(Node {
            value: Value::Shared(value),
            op: Op::Param(id),
        });
        Var(self.nodes.len() - 1)
    }

    /// `A · B`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = matmul(self.value(a), self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// `A · B` through the dense reference kernel
    /// ([`crate::matmul::matmul_dense`]): no zero-skip shortcut, so the
    /// forward cost is the full `m·n·k` FLOPs regardless of input sparsity.
    /// Values and gradients are identical to [`Tape::matmul`] — this op
    /// exists so dense-formulation baselines are charged their true cost.
    pub fn matmul_dense(&mut self, a: Var, b: Var) -> Var {
        let v = crate::matmul::matmul_dense(self.value(a), self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Hadamard product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).hadamard(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// Add a `[1, C]` bias row to every row of `x`.
    pub fn add_row_broadcast(&mut self, x: Var, bias: Var) -> Var {
        let v = self.value(x).add_row_broadcast(self.value(bias));
        self.push(v, Op::AddRowBroadcast(x, bias))
    }

    /// Multiply each row of `x` by the matching entry of an `[R, 1]` column.
    pub fn mul_col_broadcast(&mut self, x: Var, col: Var) -> Var {
        let v = self.value(x).mul_col_broadcast(self.value(col));
        self.push(v, Op::MulColBroadcast(x, col))
    }

    /// `alpha * x`.
    pub fn scale(&mut self, x: Var, alpha: f32) -> Var {
        let v = self.value(x).scale(alpha);
        self.push(v, Op::Scale(x, alpha))
    }

    /// `x + alpha` elementwise.
    pub fn add_scalar(&mut self, x: Var, alpha: f32) -> Var {
        let v = self.value(x).map(|e| e + alpha);
        self.push(v, Op::AddScalar(x, alpha))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        let v = self.value(x).map(f32::tanh);
        self.push(v, Op::Tanh(x))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: Var) -> Var {
        let v = self.value(x).map(|e| e.max(0.0));
        self.push(v, Op::Relu(x))
    }

    /// Leaky ReLU with negative slope `slope`.
    pub fn leaky_relu(&mut self, x: Var, slope: f32) -> Var {
        let v = self.value(x).map(|e| if e > 0.0 { e } else { slope * e });
        self.push(v, Op::LeakyRelu(x, slope))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let v = self.value(x).map(|e| 1.0 / (1.0 + (-e).exp()));
        self.push(v, Op::Sigmoid(x))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, x: Var) -> Var {
        let v = self.value(x).softmax_rows();
        self.push(v, Op::SoftmaxRows(x))
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let mats: Vec<&Matrix> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Matrix::concat_cols(&mats);
        self.push(v, Op::ConcatCols(parts.to_vec()))
    }

    /// Row gather `out[i] = x[idx[i]]`.
    pub fn gather_rows(&mut self, x: Var, idx: Arc<Vec<usize>>) -> Var {
        let v = self.value(x).gather_rows(&idx);
        self.push(v, Op::GatherRows { src: x, idx })
    }

    /// Row scatter-add into `out_rows` rows.
    pub fn scatter_add_rows(&mut self, x: Var, idx: Arc<Vec<usize>>, out_rows: usize) -> Var {
        let v = self.value(x).scatter_add_rows(&idx, out_rows);
        self.push(
            v,
            Op::ScatterAddRows {
                src: x,
                idx,
                out_rows,
            },
        )
    }

    /// Softmax within contiguous row segments of an `[E, 1]` column. The
    /// segments must partition `0..E`.
    pub fn segment_softmax(&mut self, x: Var, segments: Arc<Vec<(usize, usize)>>) -> Var {
        let src = self.value(x);
        assert_eq!(src.cols(), 1, "segment_softmax expects an [E, 1] column");
        debug_assert_eq!(
            segments.iter().map(|&(s, e)| e - s).sum::<usize>(),
            src.rows(),
            "segments must partition all rows"
        );
        let mut v = src.clone();
        for &(start, end) in segments.iter() {
            // Overflow-safe (max-subtracted) with a uniform fallback for
            // degenerate segments — huge attention logits must not produce
            // non-finite weights.
            Matrix::softmax_slice(&mut v.data_mut()[start..end]);
        }
        self.push(v, Op::SegmentSoftmax { src: x, segments })
    }

    /// Sparse-dense product `adj · h` (GCN propagation). `adj_t` must be the
    /// transpose of `adj`; it drives the backward rule.
    pub fn spmm(&mut self, adj: Arc<CsrMatrix>, adj_t: Arc<CsrMatrix>, h: Var) -> Var {
        debug_assert_eq!(adj.rows(), adj_t.cols());
        debug_assert_eq!(adj.cols(), adj_t.rows());
        let v = adj.spmm(self.value(h));
        self.push(v, Op::SpMM { adj, adj_t, h })
    }

    /// Edge-weighted g-SpMM with a learnable `[M, 1]` weight column:
    /// `out[d] = Σ_{m ∈ in(d)} w[m] · h[src[m]]`. Gradients flow to both
    /// the weights (g-SDDMM dot) and the features (transposed g-SpMM).
    pub fn gspmm(&mut self, graph: Arc<CsrGraph>, w: Var, h: Var) -> Var {
        assert_eq!(
            self.shape(w),
            (graph.num_messages(), 1),
            "gspmm: weight column shape"
        );
        assert_eq!(
            self.shape(h).0,
            graph.num_nodes(),
            "gspmm: feature row count"
        );
        let v = graph.spmm_ew(self.value(w).data(), self.value(h));
        self.push(v, Op::GSpmm { graph, w, h })
    }

    /// Edge-weighted g-SpMM with fixed per-message weights; gradient flows
    /// only to the features.
    pub fn gspmm_static(&mut self, graph: Arc<CsrGraph>, w: Arc<Vec<f32>>, h: Var) -> Var {
        assert_eq!(w.len(), graph.num_messages(), "gspmm_static: weight count");
        assert_eq!(
            self.shape(h).0,
            graph.num_nodes(),
            "gspmm_static: feature row count"
        );
        let v = graph.spmm_ew(&w, self.value(h));
        self.push(v, Op::GSpmmStatic { graph, w, h })
    }

    /// g-SpMM with a [`Reduce`] mode: sum or in-degree mean of source
    /// features per destination.
    pub fn aggregate(&mut self, graph: Arc<CsrGraph>, reduce: Reduce, h: Var) -> Var {
        let w = graph.reduce_weights(reduce);
        self.gspmm_static(graph, w, h)
    }

    /// g-SDDMM (add flavor): per-message score
    /// `out[m] = dst_col[dst[m]] + src_col[src[m]] (+ edge_col[m])`.
    pub fn edge_score(
        &mut self,
        graph: Arc<CsrGraph>,
        src_col: Var,
        dst_col: Var,
        edge_col: Option<Var>,
    ) -> Var {
        let n = graph.num_nodes();
        assert_eq!(self.shape(src_col), (n, 1), "edge_score: src column");
        assert_eq!(self.shape(dst_col), (n, 1), "edge_score: dst column");
        if let Some(e) = edge_col {
            assert_eq!(
                self.shape(e),
                (graph.num_messages(), 1),
                "edge_score: edge column"
            );
        }
        let v = graph.sddmm_add(
            self.value(src_col),
            self.value(dst_col),
            edge_col.map(|e| self.value(e)),
        );
        self.push(
            v,
            Op::GSddmmAdd {
                graph,
                src: src_col,
                dst: dst_col,
                edge: edge_col,
            },
        )
    }

    /// Weighted aggregation of `[M, F]` per-message payload rows with a
    /// learnable `[M, 1]` weight column: `out[d] = Σ_{m ∈ in(d)} w[m]·x[m]`.
    pub fn edge_aggregate(&mut self, graph: Arc<CsrGraph>, w: Var, x: Var) -> Var {
        assert_eq!(
            self.shape(w),
            (graph.num_messages(), 1),
            "edge_aggregate: weight column"
        );
        assert_eq!(
            self.shape(x).0,
            graph.num_messages(),
            "edge_aggregate: payload rows"
        );
        let v = graph.edge_aggregate(self.value(w).data(), self.value(x));
        self.push(v, Op::EdgeAggregate { graph, w, x })
    }

    /// Sum over rows → `[1, C]`.
    pub fn sum_rows(&mut self, x: Var) -> Var {
        let v = self.value(x).sum_rows();
        self.push(v, Op::SumRows(x))
    }

    /// Mean of all elements → `[1, 1]`.
    pub fn mean_all(&mut self, x: Var) -> Var {
        let v = Matrix::full(1, 1, self.value(x).mean());
        self.push(v, Op::MeanAll(x))
    }

    /// SortPooling: order rows by descending last channel (ties broken by
    /// earlier channels, then original index), keep the first `k`, zero-pad
    /// to exactly `k` rows.
    pub fn sort_pool(&mut self, x: Var, k: usize) -> Var {
        assert!(k > 0, "sort_pool: k must be positive");
        let src = self.value(x);
        let n = src.rows();
        let c = src.cols();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let ra = src.row(a);
            let rb = src.row(b);
            // Descending by last channel, then previous channels.
            for ch in (0..c).rev() {
                match rb[ch].partial_cmp(&ra[ch]) {
                    Some(std::cmp::Ordering::Equal) | None => continue,
                    Some(ord) => return ord,
                }
            }
            a.cmp(&b)
        });
        let keep = k.min(n);
        let perm: Vec<usize> = order[..keep].to_vec();
        let mut out = Matrix::zeros(k, c);
        for (dst, &srow) in perm.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(src.row(srow));
        }
        self.push(out, Op::SortPool { src: x, perm, k })
    }

    /// 1-D convolution. Input `[C_in, L]`, weight `[C_out, C_in*kernel]`
    /// (flattened as `c * kernel + offset`), bias `[C_out, 1]`.
    pub fn conv1d(&mut self, input: Var, weight: Var, bias: Var, spec: Conv1dSpec) -> Var {
        let x = self.value(input);
        let w = self.value(weight);
        let b = self.value(bias);
        assert_eq!(x.rows(), spec.in_channels, "conv1d: input channel mismatch");
        assert_eq!(
            w.shape(),
            (spec.out_channels, spec.in_channels * spec.kernel),
            "conv1d: weight shape mismatch"
        );
        assert_eq!(
            b.shape(),
            (spec.out_channels, 1),
            "conv1d: bias shape mismatch"
        );
        let l = x.cols();
        let l_out = spec.out_len(l);
        let mut out = Matrix::zeros(spec.out_channels, l_out);
        for o in 0..spec.out_channels {
            let wrow = w.row(o);
            let bval = b.get(o, 0);
            for t in 0..l_out {
                let start = t * spec.stride;
                let mut acc = bval;
                for ci in 0..spec.in_channels {
                    let xrow = x.row(ci);
                    let wslice = &wrow[ci * spec.kernel..(ci + 1) * spec.kernel];
                    for (kk, &wv) in wslice.iter().enumerate() {
                        acc += wv * xrow[start + kk];
                    }
                }
                out.set(o, t, acc);
            }
        }
        self.push(
            out,
            Op::Conv1d {
                input,
                weight,
                bias,
                spec,
            },
        )
    }

    /// Non-overlapping max pooling over the length axis of `[C, L]`.
    pub fn max_pool1d(&mut self, x: Var, size: usize) -> Var {
        assert!(size > 0, "max_pool1d: window must be positive");
        let src = self.value(x);
        let (c, l) = src.shape();
        assert!(
            l >= size,
            "max_pool1d: length {l} shorter than window {size}"
        );
        let l_out = l / size;
        let mut out = Matrix::zeros(c, l_out);
        let mut argmax = vec![0usize; c * l_out];
        for ch in 0..c {
            let row = src.row(ch);
            for t in 0..l_out {
                let mut best = t * size;
                for off in 1..size {
                    if row[t * size + off] > row[best] {
                        best = t * size + off;
                    }
                }
                out.set(ch, t, row[best]);
                argmax[ch * l_out + t] = ch * l + best;
            }
        }
        self.push(
            out,
            Op::MaxPool1d {
                src: x,
                size,
                argmax,
            },
        )
    }

    /// Row-major reshape (no data movement semantics change).
    pub fn reshape(&mut self, x: Var, rows: usize, cols: usize) -> Var {
        let (sr, sc) = self.shape(x);
        let v = self.value(x).reshaped(rows, cols);
        self.push(
            v,
            Op::Reshape {
                src: x,
                src_rows: sr,
                src_cols: sc,
            },
        )
    }

    /// Inverted dropout with a caller-provided mask of per-element factors
    /// (0 for dropped, `1/keep_prob` for kept).
    pub fn dropout(&mut self, x: Var, mask: Arc<Vec<f32>>) -> Var {
        let src = self.value(x);
        assert_eq!(mask.len(), src.len(), "dropout: mask length mismatch");
        let mut v = src.clone();
        for (e, &m) in v.data_mut().iter_mut().zip(mask.iter()) {
            *e *= m;
        }
        self.push(v, Op::Dropout { src: x, mask })
    }

    /// Mean softmax cross-entropy of logit rows against integer labels.
    /// Returns a `[1, 1]` scalar loss node.
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: Arc<Vec<usize>>) -> Var {
        let lg = self.value(logits);
        assert_eq!(
            lg.rows(),
            labels.len(),
            "cross_entropy: label count mismatch"
        );
        let probs = lg.softmax_rows();
        let mut nll = 0.0f32;
        for (r, &y) in labels.iter().enumerate() {
            assert!(y < lg.cols(), "cross_entropy: label {y} out of range");
            nll -= probs.get(r, y).max(1e-12).ln();
        }
        let loss = Matrix::full(1, 1, nll / labels.len().max(1) as f32);
        self.push(
            loss,
            Op::SoftmaxCrossEntropy {
                logits,
                labels,
                probs,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_match_matrix_ops() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = t.leaf(Matrix::eye(2));
        let c = t.matmul(a, b);
        assert_eq!(t.value(c), t.value(a));
        let d = t.add(a, a);
        assert_eq!(t.value(d).sum(), 20.0);
        let e = t.scale(d, 0.5);
        assert_eq!(t.value(e), t.value(a));
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn sort_pool_orders_and_pads() {
        let mut t = Tape::new();
        // Last channel values: 3, 1, 2 → order rows 0, 2, 1.
        let x = t.leaf(Matrix::from_vec(
            3,
            2,
            vec![10.0, 3.0, 30.0, 1.0, 20.0, 2.0],
        ));
        let p = t.sort_pool(x, 4);
        let v = t.value(p);
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.row(0), &[10.0, 3.0]);
        assert_eq!(v.row(1), &[20.0, 2.0]);
        assert_eq!(v.row(2), &[30.0, 1.0]);
        assert_eq!(v.row(3), &[0.0, 0.0], "padding row must be zero");
    }

    #[test]
    fn sort_pool_truncates() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(3, 1, vec![1.0, 5.0, 3.0]));
        let p = t.sort_pool(x, 2);
        let v = t.value(p);
        assert_eq!(v.shape(), (2, 1));
        assert_eq!(v.get(0, 0), 5.0);
        assert_eq!(v.get(1, 0), 3.0);
    }

    #[test]
    fn sort_pool_tie_break_is_deterministic() {
        let mut t = Tape::new();
        // Equal last channel; first channel must break the tie (descending).
        let x = t.leaf(Matrix::from_vec(2, 2, vec![1.0, 7.0, 9.0, 7.0]));
        let p = t.sort_pool(x, 2);
        assert_eq!(t.value(p).row(0), &[9.0, 7.0]);
        assert_eq!(t.value(p).row(1), &[1.0, 7.0]);
    }

    #[test]
    fn conv1d_hand_example() {
        let mut t = Tape::new();
        // One input channel [1, 4], one output channel, kernel 2 stride 2.
        let x = t.leaf(Matrix::row_vector(&[1.0, 2.0, 3.0, 4.0]));
        let w = t.leaf(Matrix::row_vector(&[10.0, 1.0]));
        let b = t.leaf(Matrix::col_vector(&[0.5]));
        let spec = Conv1dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 2,
            stride: 2,
        };
        let y = t.conv1d(x, w, b, spec);
        // Windows: (1,2) -> 12.5 ; (3,4) -> 34.5
        assert_eq!(t.value(y).data(), &[12.5, 34.5]);
    }

    #[test]
    fn conv1d_multi_channel() {
        let mut t = Tape::new();
        // Two input channels of length 3, kernel 3 stride 3 → single window.
        let x = t.leaf(Matrix::from_vec(2, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]));
        // Weight picks channel 0 offset 0 plus 2x channel 1 offset 1.
        let w = t.leaf(Matrix::row_vector(&[1.0, 0.0, 0.0, 0.0, 2.0, 0.0]));
        let b = t.leaf(Matrix::col_vector(&[0.0]));
        let spec = Conv1dSpec {
            in_channels: 2,
            out_channels: 1,
            kernel: 3,
            stride: 3,
        };
        let y = t.conv1d(x, w, b, spec);
        assert_eq!(t.value(y).data(), &[3.0]);
    }

    #[test]
    fn max_pool_tracks_argmax() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 4, vec![1.0, 9.0, 5.0, 2.0]));
        let y = t.max_pool1d(x, 2);
        assert_eq!(t.value(y).data(), &[9.0, 5.0]);
    }

    #[test]
    fn segment_softmax_normalizes_per_segment() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::col_vector(&[0.0, 0.0, 1.0, 2.0, 3.0]));
        let segs = Arc::new(vec![(0usize, 2usize), (2, 5)]);
        let y = t.segment_softmax(x, segs);
        let v = t.value(y);
        assert!((v.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((v.get(1, 0) - 0.5).abs() < 1e-6);
        let s: f32 = (2..5).map(|i| v.get(i, 0)).sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(v.get(4, 0) > v.get(3, 0));
    }

    #[test]
    fn segment_softmax_survives_huge_attention_logits() {
        // Attention logits the size GCN-LASE-style layers can emit on a
        // badly scaled graph: exp would overflow without max subtraction.
        let mut t = Tape::new();
        let x = t.leaf(Matrix::col_vector(&[
            3.0e38, 3.0e38, -3.0e38, 1.0e38, 9.9e37,
        ]));
        let segs = Arc::new(vec![(0usize, 3usize), (3, 5)]);
        let y = t.segment_softmax(x, segs);
        let v = t.value(y);
        assert!(v.all_finite(), "attention weights must stay finite");
        assert!((v.get(0, 0) - 0.5).abs() < 1e-5);
        assert!((v.get(1, 0) - 0.5).abs() < 1e-5);
        assert!(v.get(2, 0) < 1e-6);
        let s: f32 = (3..5).map(|i| v.get(i, 0)).sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!((v.get(3, 0) - 1.0).abs() < 1e-5, "dominant logit wins");
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_k() {
        let mut t = Tape::new();
        let logits = t.leaf(Matrix::zeros(3, 4));
        let loss = t.softmax_cross_entropy(logits, Arc::new(vec![0, 1, 2]));
        let v = t.value(loss).get(0, 0);
        assert!((v - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gather_scatter_shapes() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32));
        let g = t.gather_rows(x, Arc::new(vec![1, 1, 0]));
        assert_eq!(t.shape(g), (3, 3));
        let s = t.scatter_add_rows(g, Arc::new(vec![0, 0, 2]), 5);
        assert_eq!(t.shape(s), (5, 3));
        assert_eq!(t.value(s).row(0)[0], 6.0); // two copies of row 1 (3+3)
    }
}
