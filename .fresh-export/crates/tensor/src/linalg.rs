//! Small dense linear algebra used by the Gaussian-process surrogate in the
//! hyperparameter tuner: Cholesky factorization, triangular solves, and
//! SPD system solving. Sizes here are the number of evaluated
//! hyperparameter configurations (tens), so these are straightforward
//! O(n³) kernels with care for numerical robustness, not blocked BLAS.

use crate::matrix::Matrix;

/// Error raised when a factorization fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is not positive definite (within tolerance).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// The matrix is not square or shapes disagree.
    ShapeMismatch,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::ShapeMismatch => write!(f, "shape mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Lower-triangular Cholesky factor `L` with `L·Lᵀ = A`.
///
/// `A` must be symmetric positive definite; only the lower triangle is read.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch);
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite { pivot: i });
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solve `L·x = b` for lower-triangular `L` (forward substitution).
/// `b` may have multiple right-hand-side columns.
pub fn solve_lower(l: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let n = l.rows();
    if l.cols() != n || b.rows() != n {
        return Err(LinalgError::ShapeMismatch);
    }
    let mut x = b.clone();
    for col in 0..b.cols() {
        for i in 0..n {
            let mut sum = x.get(i, col);
            for k in 0..i {
                sum -= l.get(i, k) * x.get(k, col);
            }
            x.set(i, col, sum / l.get(i, i));
        }
    }
    Ok(x)
}

/// Solve `Lᵀ·x = b` for lower-triangular `L` (backward substitution).
pub fn solve_lower_transpose(l: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let n = l.rows();
    if l.cols() != n || b.rows() != n {
        return Err(LinalgError::ShapeMismatch);
    }
    let mut x = b.clone();
    for col in 0..b.cols() {
        for i in (0..n).rev() {
            let mut sum = x.get(i, col);
            for k in i + 1..n {
                sum -= l.get(k, i) * x.get(k, col);
            }
            x.set(i, col, sum / l.get(i, i));
        }
    }
    Ok(x)
}

/// Solve the SPD system `A·x = b` via Cholesky.
pub fn solve_spd(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let l = cholesky(a)?;
    let y = solve_lower(&l, b)?;
    solve_lower_transpose(&l, &y)
}

/// Log-determinant of an SPD matrix via its Cholesky factor:
/// `log|A| = 2·Σ log L_ii`.
pub fn logdet_spd(a: &Matrix) -> Result<f32, LinalgError> {
    let l = cholesky(a)?;
    Ok(2.0 * (0..l.rows()).map(|i| l.get(i, i).ln()).sum::<f32>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::{matmul, matmul_nt};
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    /// Random SPD matrix A = M·Mᵀ + n·I.
    fn random_spd(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::from_fn(n, n, |_, _| rng.random_range(-1.0f32..1.0));
        let mut a = matmul_nt(&m, &m);
        for i in 0..n {
            a.set(i, i, a.get(i, i) + n as f32);
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        for seed in 0..5 {
            let a = random_spd(8, seed);
            let l = cholesky(&a).expect("SPD");
            let recon = matmul_nt(&l, &l);
            assert!(recon.max_abs_diff(&a) < 1e-3, "seed {seed}");
        }
    }

    #[test]
    fn cholesky_of_identity_is_identity() {
        let l = cholesky(&Matrix::eye(5)).expect("identity is SPD");
        assert!(l.max_abs_diff(&Matrix::eye(5)) < 1e-6);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        assert_eq!(
            cholesky(&Matrix::zeros(2, 3)),
            Err(LinalgError::ShapeMismatch)
        );
    }

    #[test]
    fn triangular_solves_invert() {
        let a = random_spd(6, 11);
        let l = cholesky(&a).expect("SPD");
        let b = Matrix::from_fn(6, 2, |r, c| (r + 2 * c) as f32);
        let y = solve_lower(&l, &b).expect("solve");
        assert!(matmul(&l, &y).max_abs_diff(&b) < 1e-3);
        let z = solve_lower_transpose(&l, &b).expect("solve");
        assert!(matmul(&l.transpose(), &z).max_abs_diff(&b) < 1e-3);
    }

    #[test]
    fn spd_solve_matches_direct() {
        let a = random_spd(7, 21);
        let x_true = Matrix::from_fn(7, 1, |r, _| (r as f32 - 3.0) * 0.5);
        let b = matmul(&a, &x_true);
        let x = solve_spd(&a, &b).expect("solve");
        assert!(x.max_abs_diff(&x_true) < 1e-3);
    }

    #[test]
    fn logdet_of_diagonal() {
        let mut a = Matrix::eye(3);
        a.set(0, 0, 2.0);
        a.set(1, 1, 4.0);
        a.set(2, 2, 0.5);
        let expect = (2.0f32 * 4.0 * 0.5).ln();
        assert!((logdet_spd(&a).expect("SPD") - expect).abs() < 1e-5);
    }
}
