//! Random matrix initialization (uniform / Gaussian / Xavier / Kaiming).
//!
//! All functions take an explicit [`StdRng`] so that every stochastic step in
//! the workspace is reproducible from a single `u64` seed.

use crate::matrix::Matrix;
use rand::{rngs::StdRng, RngExt};

/// Uniform fill in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut StdRng) -> Matrix {
    assert!(lo < hi, "uniform: empty range [{lo}, {hi})");
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(lo..hi))
}

/// Standard-normal sample via the Box–Muller transform (rand's core API does
/// not ship a Gaussian distribution; this keeps us off extra dependencies).
pub fn normal_sample(rng: &mut StdRng) -> f32 {
    loop {
        let u1: f32 = rng.random::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.random::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        return r * theta.cos();
    }
}

/// Gaussian fill with the given mean and standard deviation.
pub fn normal(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| mean + std * normal_sample(rng))
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(fan_in, fan_out, -limit, limit, rng)
}

/// Kaiming/He normal initialization for a `[fan_in, fan_out]` weight
/// (suitable for ReLU-family activations).
pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    let std = (2.0 / fan_in as f32).sqrt();
    normal(fan_in, fan_out, 0.0, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = uniform(20, 20, -0.5, 0.5, &mut rng);
        assert!(m.max() < 0.5 && m.min() >= -0.5);
    }

    #[test]
    fn normal_moments_are_roughly_right() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = normal(100, 100, 1.0, 2.0, &mut rng);
        let mean = m.mean();
        let var = m.map(|v| (v - mean) * (v - mean)).mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn xavier_limit_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(3);
        let small = xavier_uniform(4, 4, &mut rng);
        let large = xavier_uniform(1024, 1024, &mut rng);
        assert!(small.max() > large.max());
        let limit = (6.0f32 / 2048.0).sqrt();
        assert!(large.max() <= limit && large.min() >= -limit);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(
            normal(3, 3, 0.0, 1.0, &mut a),
            normal(3, 3, 0.0, 1.0, &mut b)
        );
    }

    #[test]
    fn kaiming_std_tracks_fan_in() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = kaiming_normal(200, 50, &mut rng);
        let var = m.map(|v| v * v).mean();
        assert!((var - 2.0 / 200.0).abs() < 0.005, "var {var}");
    }
}
