//! Matrix-multiplication kernels.
//!
//! Three variants cover every contraction reverse-mode autodiff needs
//! without materializing transposes:
//!
//! * [`matmul`]    — `C = A · B`
//! * [`matmul_nt`] — `C = A · Bᵀ`
//! * [`matmul_tn`] — `C = Aᵀ · B`
//!
//! All kernels use an i-k-j loop order (row-major friendly, auto-vectorizes)
//! and fan the output rows out over rayon once the FLOP count crosses
//! [`PAR_FLOP_THRESHOLD`]; below it the sequential kernel wins because the
//! fork/join overhead dominates.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// Minimum `m * n * k` product before the parallel kernel is used.
pub const PAR_FLOP_THRESHOLD: usize = 64 * 64 * 64;

/// `C = A · B`.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimension mismatch {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    if m * n * k >= PAR_FLOP_THRESHOLD {
        out.data_mut()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, orow)| mm_row(a.row(i), b, orow));
    } else {
        for i in 0..m {
            let (arow, orow) = (a.row(i), row_of(&mut out, i, n));
            mm_row(arow, b, orow);
        }
    }
    out
}

/// `C = A · Bᵀ` (dot products of rows of `A` with rows of `B`).
///
/// # Panics
/// Panics if `A.cols() != B.cols()`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt: inner dimension mismatch {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.rows();
    let mut out = Matrix::zeros(m, n);
    let body = |i: usize, orow: &mut [f32]| {
        let arow = a.row(i);
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = b.row(j);
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += arow[p] * brow[p];
            }
            *o = acc;
        }
    };
    if m * n * k >= PAR_FLOP_THRESHOLD {
        out.data_mut()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, orow)| body(i, orow));
    } else {
        for i in 0..m {
            body(i, row_of(&mut out, i, n));
        }
    }
    out
}

/// `C = Aᵀ · B`.
///
/// # Panics
/// Panics if `A.rows() != B.rows()`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn: inner dimension mismatch {:?}ᵀ x {:?}",
        a.shape(),
        b.shape()
    );
    let k = a.rows();
    let m = a.cols();
    let n = b.cols();
    // Accumulate outer products row-by-row of the shared dimension; this
    // keeps both inputs streaming in row-major order.
    if m * n * k >= PAR_FLOP_THRESHOLD {
        // Split the shared dimension across threads, then reduce.
        let chunk = (k / rayon::current_num_threads().max(1)).max(16);
        let partials: Vec<Matrix> = (0..k)
            .into_par_iter()
            .chunks(chunk)
            .map(|rows| {
                let mut local = Matrix::zeros(m, n);
                for p in rows {
                    accumulate_outer(&mut local, a.row(p), b.row(p));
                }
                local
            })
            .collect();
        let mut out = Matrix::zeros(m, n);
        for part in &partials {
            out.add_assign(part);
        }
        out
    } else {
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            accumulate_outer(&mut out, a.row(p), b.row(p));
        }
        out
    }
}

/// `C = A · B` through the dense reference kernel.
///
/// Unlike [`matmul`], no zero-entry shortcut is taken: every one of the
/// `m·n·k` multiply-adds is performed. Numerically the result is identical
/// to [`matmul`] (skipped terms contribute exactly `+0.0`), but the cost is
/// the full dense FLOP count regardless of input sparsity. This is the
/// faithful cost model for dense formulations — the dense adjacency-matmul
/// GCN baseline the sparse kernels are benchmarked against — and the
/// reference the g-SpMM kernels are property-tested under.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn matmul_dense(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_dense: inner dimension mismatch {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    if m * n * k >= PAR_FLOP_THRESHOLD {
        out.data_mut()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, orow)| mm_row_dense(a.row(i), b, orow));
    } else {
        for i in 0..m {
            let (arow, orow) = (a.row(i), row_of(&mut out, i, n));
            mm_row_dense(arow, b, orow);
        }
    }
    out
}

/// One output row of `A · B`: `orow += arow · B`.
#[inline]
fn mm_row(arow: &[f32], b: &Matrix, orow: &mut [f32]) {
    let n = b.cols();
    for (p, &av) in arow.iter().enumerate() {
        if av == 0.0 {
            continue; // node-feature matrices are often one-hot sparse
        }
        let brow = b.row(p);
        for j in 0..n {
            orow[j] += av * brow[j];
        }
    }
}

/// One output row of `A · B` with no zero-skip: the dense reference path.
#[inline]
fn mm_row_dense(arow: &[f32], b: &Matrix, orow: &mut [f32]) {
    let n = b.cols();
    for (p, &av) in arow.iter().enumerate() {
        let brow = b.row(p);
        for j in 0..n {
            orow[j] += av * brow[j];
        }
    }
}

/// `out += arow ⊗ brow` where `arow` indexes output rows.
#[inline]
fn accumulate_outer(out: &mut Matrix, arow: &[f32], brow: &[f32]) {
    let n = out.cols();
    for (i, &av) in arow.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let orow = &mut out.data_mut()[i * n..(i + 1) * n];
        for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
            *o += av * bv;
        }
    }
}

#[inline]
fn row_of(out: &mut Matrix, i: usize, n: usize) -> &mut [f32] {
    &mut out.data_mut()[i * n..(i + 1) * n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.random_range(-1.0f32..1.0))
    }

    /// Naive reference O(mnk) triple loop.
    fn reference(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for p in 0..a.cols() {
                    acc += a.get(i, p) * b.get(p, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn matmul_matches_reference_small() {
        let a = random(5, 7, 1);
        let b = random(7, 3, 2);
        assert!(matmul(&a, &b).max_abs_diff(&reference(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_matches_reference_parallel_path() {
        let a = random(80, 90, 3);
        let b = random(90, 70, 4);
        const _: () = assert!(80 * 90 * 70 >= PAR_FLOP_THRESHOLD);
        assert!(matmul(&a, &b).max_abs_diff(&reference(&a, &b)) < 1e-3);
    }

    #[test]
    fn matmul_identity() {
        let a = random(6, 6, 5);
        assert!(matmul(&a, &Matrix::eye(6)).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&Matrix::eye(6), &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let a = random(4, 6, 6);
        let b = random(9, 6, 7);
        let expect = reference(&a, &b.transpose());
        assert!(matmul_nt(&a, &b).max_abs_diff(&expect) < 1e-4);
    }

    #[test]
    fn nt_parallel_path() {
        let a = random(80, 80, 8);
        let b = random(80, 80, 9);
        let expect = reference(&a, &b.transpose());
        assert!(matmul_nt(&a, &b).max_abs_diff(&expect) < 1e-3);
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let a = random(6, 4, 10);
        let b = random(6, 5, 11);
        let expect = reference(&a.transpose(), &b);
        assert!(matmul_tn(&a, &b).max_abs_diff(&expect) < 1e-4);
    }

    #[test]
    fn tn_parallel_path() {
        let a = random(128, 64, 12);
        let b = random(128, 64, 13);
        let expect = reference(&a.transpose(), &b);
        assert!(matmul_tn(&a, &b).max_abs_diff(&expect) < 1e-3);
    }

    #[test]
    fn rectangular_chains_associate() {
        // (A·B)·C == A·(B·C) up to float tolerance.
        let a = random(3, 8, 14);
        let b = random(8, 5, 15);
        let c = random(5, 2, 16);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        assert!(left.max_abs_diff(&right) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn dimension_mismatch_panics() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    #[test]
    fn dense_kernel_matches_zero_skip_kernel_bitwise() {
        // The zero-skip only ever omits exact `+0.0` terms, so both
        // kernels must agree bit-for-bit — including on sparse inputs.
        let mut a = random(30, 40, 18);
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            if i % 3 != 0 {
                *v = 0.0;
            }
        }
        let b = random(40, 20, 19);
        assert_eq!(matmul_dense(&a, &b).data(), matmul(&a, &b).data());
    }

    #[test]
    fn dense_kernel_parallel_path_matches_reference() {
        let a = random(80, 90, 20);
        let b = random(90, 70, 21);
        assert!(matmul_dense(&a, &b).max_abs_diff(&reference(&a, &b)) < 1e-3);
    }

    #[test]
    fn one_hot_rows_select_columns() {
        // One-hot lhs row picks out a row of B — the common node-feature case.
        let mut a = Matrix::zeros(2, 4);
        a.set(0, 2, 1.0);
        a.set(1, 0, 1.0);
        let b = random(4, 3, 17);
        let c = matmul(&a, &b);
        assert_eq!(c.row(0), b.row(2));
        assert_eq!(c.row(1), b.row(0));
    }
}
