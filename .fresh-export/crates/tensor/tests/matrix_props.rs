//! Property-based tests of the dense matrix algebra: ring/vector-space
//! laws, transpose identities, and reduction consistency.

use amdgcnn_tensor::{matmul, Matrix};
use proptest::prelude::*;

fn mat(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

const TOL: f32 = 1e-2;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn addition_is_commutative_and_associative(a in mat(3, 4), b in mat(3, 4), c in mat(3, 4)) {
        prop_assert!(a.add(&b).max_abs_diff(&b.add(&a)) < TOL);
        prop_assert!(a.add(&b).add(&c).max_abs_diff(&a.add(&b.add(&c))) < TOL);
    }

    #[test]
    fn subtraction_inverts_addition(a in mat(2, 5), b in mat(2, 5)) {
        prop_assert!(a.add(&b).sub(&b).max_abs_diff(&a) < TOL);
    }

    #[test]
    fn scalar_distributes(a in mat(3, 3), b in mat(3, 3), alpha in -5.0f32..5.0) {
        let left = a.add(&b).scale(alpha);
        let right = a.scale(alpha).add(&b.scale(alpha));
        prop_assert!(left.max_abs_diff(&right) < TOL);
    }

    #[test]
    fn matmul_distributes_over_addition(a in mat(3, 4), b in mat(4, 2), c in mat(4, 2)) {
        let left = matmul::matmul(&a, &b.add(&c));
        let right = matmul::matmul(&a, &b).add(&matmul::matmul(&a, &c));
        prop_assert!(left.max_abs_diff(&right) < 1e-1);
    }

    #[test]
    fn transpose_of_product(a in mat(3, 4), b in mat(4, 2)) {
        let left = matmul::matmul(&a, &b).transpose();
        let right = matmul::matmul(&b.transpose(), &a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-1);
    }

    #[test]
    fn nt_tn_consistency(a in mat(3, 5), b in mat(4, 5), c in mat(3, 2)) {
        // A·Bᵀ computed two ways.
        let direct = matmul::matmul_nt(&a, &b);
        let explicit = matmul::matmul(&a, &b.transpose());
        prop_assert!(direct.max_abs_diff(&explicit) < 1e-1);
        // Aᵀ·C computed two ways.
        let direct = matmul::matmul_tn(&a, &c);
        let explicit = matmul::matmul(&a.transpose(), &c);
        prop_assert!(direct.max_abs_diff(&explicit) < 1e-1);
    }

    #[test]
    fn row_and_col_sums_agree_with_total(a in mat(4, 6)) {
        let total = a.sum();
        prop_assert!((a.sum_rows().sum() - total).abs() < 1e-2);
        prop_assert!((a.sum_cols().sum() - total).abs() < 1e-2);
    }

    #[test]
    fn gather_then_scatter_identity_on_distinct_indices(a in mat(6, 3)) {
        // Gathering all rows in order then scattering back is the identity.
        let idx: Vec<usize> = (0..6).collect();
        let g = a.gather_rows(&idx);
        let s = g.scatter_add_rows(&idx, 6);
        prop_assert!(s.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn softmax_rows_is_stochastic(a in mat(5, 4)) {
        let s = a.softmax_rows();
        for r in 0..5 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| v >= 0.0));
        }
        // Shift invariance.
        let shifted = a.map(|v| v + 7.5).softmax_rows();
        prop_assert!(s.max_abs_diff(&shifted) < 1e-4);
    }

    #[test]
    fn concat_cols_preserves_content(a in mat(3, 2), b in mat(3, 3)) {
        let cat = Matrix::concat_cols(&[&a, &b]);
        prop_assert_eq!(cat.shape(), (3, 5));
        for r in 0..3 {
            prop_assert_eq!(&cat.row(r)[..2], a.row(r));
            prop_assert_eq!(&cat.row(r)[2..], b.row(r));
        }
    }

    #[test]
    fn norm_triangle_inequality(a in mat(4, 4), b in mat(4, 4)) {
        prop_assert!(a.add(&b).norm() <= a.norm() + b.norm() + 1e-3);
    }
}
