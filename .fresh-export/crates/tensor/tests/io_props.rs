//! Property tests for the binary checkpoint format: any parameter store
//! survives a save/load round trip bit-exactly, and header corruption is
//! always reported as invalid data.

use amdgcnn_tensor::io::{load_params, restore_into, save_params};
use amdgcnn_tensor::{Matrix, ParamStore};
use proptest::prelude::*;

/// A strategy for small parameter stores: 1–5 named matrices with random
/// shapes and values (including negatives, zeros, and subnormal-ish
/// magnitudes).
fn arb_store() -> impl Strategy<Value = ParamStore> {
    proptest::collection::vec((1usize..6, 1usize..6, 0u32..u32::MAX), 1..6).prop_map(|shapes| {
        let mut ps = ParamStore::new();
        for (i, (rows, cols, seed)) in shapes.into_iter().enumerate() {
            let m = Matrix::from_fn(rows, cols, |r, c| {
                // Deterministic pseudo-random values across several orders
                // of magnitude, sign included.
                let x = seed
                    .wrapping_mul(2654435761)
                    .wrapping_add((r * 31 + c * 7) as u32);
                (x as f32 / u32::MAX as f32 - 0.5) * 2e3
            });
            ps.register(format!("param.{i}"), m);
        }
        ps
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn save_load_roundtrip_is_bit_exact(ps in arb_store()) {
        let mut buf = Vec::new();
        save_params(&ps, &mut buf).expect("save");
        let loaded = load_params(buf.as_slice()).expect("load");
        prop_assert_eq!(loaded.len(), ps.len());
        for (id, value) in ps.iter() {
            prop_assert_eq!(loaded.name(id), ps.name(id));
            prop_assert_eq!(loaded.get(id).shape(), value.shape());
            // Bit-exact, not approximately-equal: compare raw bits so that
            // -0.0 vs 0.0 or rounding drift would be caught.
            let a: Vec<u32> = value.data().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = loaded.get(id).data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn any_truncation_is_invalid_data(ps in arb_store(), frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        save_params(&ps, &mut buf).expect("save");
        let cut = ((buf.len() as f64) * frac) as usize;
        prop_assume!(cut < buf.len());
        let err = load_params(&buf[..cut]).expect_err("truncated must fail");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_magic_is_rejected(ps in arb_store(), byte in 0usize..4, bit in 0u8..8) {
        let mut buf = Vec::new();
        save_params(&ps, &mut buf).expect("save");
        buf[byte] ^= 1 << bit;
        let err = load_params(buf.as_slice()).expect_err("bad magic must fail");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn any_single_byte_flip_is_invalid_data(
        ps in arb_store(),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        save_params(&ps, &mut buf).expect("save");
        let pos = (((buf.len() - 1) as f64) * pos_frac) as usize;
        buf[pos] ^= 1 << bit;
        // Since v2 every byte is covered by a section or footer CRC, so
        // corruption anywhere — names, shapes, values, checksums — must be
        // detected rather than silently loaded.
        let err = load_params(buf.as_slice()).expect_err("corrupt must fail");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn restore_into_rejects_renamed_params(ps in arb_store()) {
        let mut buf = Vec::new();
        save_params(&ps, &mut buf).expect("save");
        let loaded = load_params(buf.as_slice()).expect("load");

        // Same shapes, different names: must be refused.
        let mut renamed = ParamStore::new();
        for (id, value) in ps.iter() {
            renamed.register(format!("other.{}", id.0), Matrix::zeros(value.rows(), value.cols()));
        }
        prop_assert!(restore_into(&mut renamed, &loaded).is_err());

        // Identical structure: must succeed and copy every value.
        let mut fresh = ParamStore::new();
        for (id, value) in ps.iter() {
            fresh.register(ps.name(id).to_string(), Matrix::zeros(value.rows(), value.cols()));
        }
        restore_into(&mut fresh, &loaded).expect("restore");
        for (id, value) in ps.iter() {
            prop_assert_eq!(fresh.get(id).data(), value.data());
        }
    }
}
