//! Property-based validation of the sparse message-passing kernels
//! (g-SpMM, g-SDDMM, edge aggregation) against dense references built from
//! independently gradcheck-verified ops (gather / scatter / broadcast).
//!
//! Each property runs the same loss through the fused kernel path and the
//! reference path on a random graph, then compares the forward value AND
//! every parameter gradient to within 1e-5.

use amdgcnn_tensor::{CsrGraph, Matrix, ParamId, ParamStore, Tape, Var};
use proptest::prelude::*;
use std::sync::Arc;

const TOL: f32 = 1e-5;

/// Strategy: a random message graph over `n ∈ [2, 6)` nodes with up to 16
/// messages (duplicates, self-messages, and isolated nodes all arise), as
/// dst-sorted `(src, dst)` pairs ready for [`CsrGraph::from_messages`].
fn graph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..6).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..16).prop_map(move |mut msgs| {
            msgs.sort_unstable_by_key(|&(s, d)| (d, s));
            (n, msgs)
        })
    })
}

fn max_abs_diff(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape());
    a.data()
        .iter()
        .zip(b.data().iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Run `build` (forward graph returning the pre-loss output) through a
/// fresh tape, reduce with mean-of-squares, and return the forward value
/// plus the gradient of every registered parameter.
fn run(params: &ParamStore, build: impl Fn(&mut Tape, &[Var]) -> Var) -> (Matrix, Vec<Matrix>) {
    let mut tape = Tape::new();
    let vars: Vec<Var> = (0..params.len())
        .map(|i| tape.param(ParamId(i), params.get(ParamId(i)).clone()))
        .collect();
    let y = build(&mut tape, &vars);
    let fwd = tape.value(y).clone();
    let sq = tape.mul(y, y);
    let loss = tape.mean_all(sq);
    let grads = tape.backward(loss, params.len());
    let grads = (0..params.len())
        .map(|i| {
            grads
                .get(ParamId(i))
                .cloned()
                .unwrap_or_else(|| Matrix::zeros(0, 0))
        })
        .collect();
    (fwd, grads)
}

/// Assert that two (forward, gradients) pairs agree to `TOL` everywhere.
fn assert_close(a: &(Matrix, Vec<Matrix>), b: &(Matrix, Vec<Matrix>)) {
    assert!(
        max_abs_diff(&a.0, &b.0) <= TOL,
        "forward mismatch: {} > {TOL}",
        max_abs_diff(&a.0, &b.0)
    );
    assert_eq!(a.1.len(), b.1.len());
    for (i, (ga, gb)) in a.1.iter().zip(b.1.iter()).enumerate() {
        assert!(
            max_abs_diff(ga, gb) <= TOL,
            "grad {i} mismatch: {} > {TOL}",
            max_abs_diff(ga, gb)
        );
    }
}

fn indices(ids: &[u32]) -> Arc<Vec<usize>> {
    Arc::new(ids.iter().map(|&i| i as usize).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// g-SpMM with learnable edge weights: kernel vs
    /// gather → weight-broadcast → scatter-add.
    #[test]
    fn gspmm_matches_gather_scatter((n, msgs) in graph(), feat in 1usize..4) {
        let g = Arc::new(CsrGraph::from_messages(n, &msgs));
        let src = indices(g.src_ids());
        let dst = indices(g.dst_ids());
        let m = g.num_messages();

        // Deterministic pseudo-random parameter values derived from shape.
        let h = Matrix::from_fn(n, feat, |r, c| ((r * 7 + c * 3) as f32 * 0.37).sin());
        let w = Matrix::from_fn(m, 1, |r, _| ((r * 5 + 1) as f32 * 0.53).cos());
        let mut params = ParamStore::new();
        params.register("w", w);
        params.register("h", h);

        let kernel = run(&params, |t, vars| t.gspmm(g.clone(), vars[0], vars[1]));
        let reference = run(&params, |t, vars| {
            let gathered = t.gather_rows(vars[1], src.clone());
            let weighted = t.mul_col_broadcast(gathered, vars[0]);
            t.scatter_add_rows(weighted, dst.clone(), n)
        });
        assert_close(&kernel, &reference);
    }

    /// g-SpMM with static weights: kernel vs the same reference with the
    /// weight column as a constant leaf (gradient flows to features only).
    #[test]
    fn gspmm_static_matches_gather_scatter((n, msgs) in graph(), feat in 1usize..4) {
        let g = Arc::new(CsrGraph::from_messages(n, &msgs));
        let src = indices(g.src_ids());
        let dst = indices(g.dst_ids());
        let m = g.num_messages();
        let w: Arc<Vec<f32>> = Arc::new((0..m).map(|r| ((r * 5 + 1) as f32 * 0.53).cos()).collect());
        let wmat = Matrix::from_vec(m, 1, w.as_ref().clone());

        let mut params = ParamStore::new();
        params.register("h", Matrix::from_fn(n, feat, |r, c| ((r * 7 + c * 3) as f32 * 0.37).sin()));

        let w2 = w.clone();
        let g2 = g.clone();
        let kernel = run(&params, move |t, vars| t.gspmm_static(g2.clone(), w2.clone(), vars[0]));
        let reference = run(&params, |t, vars| {
            let wl = t.leaf(wmat.clone());
            let gathered = t.gather_rows(vars[0], src.clone());
            let weighted = t.mul_col_broadcast(gathered, wl);
            t.scatter_add_rows(weighted, dst.clone(), n)
        });
        assert_close(&kernel, &reference);
    }

    /// g-SDDMM (add): kernel vs gather(src) + gather(dst) + edge column.
    #[test]
    fn edge_score_matches_gather_add((n, msgs) in graph()) {
        let g = Arc::new(CsrGraph::from_messages(n, &msgs));
        let src = indices(g.src_ids());
        let dst = indices(g.dst_ids());
        let m = g.num_messages();

        let mut params = ParamStore::new();
        params.register("s_src", Matrix::from_fn(n, 1, |r, _| ((r * 3 + 1) as f32 * 0.41).sin()));
        params.register("s_dst", Matrix::from_fn(n, 1, |r, _| ((r * 11 + 2) as f32 * 0.23).cos()));
        params.register("s_edge", Matrix::from_fn(m, 1, |r, _| ((r * 13 + 3) as f32 * 0.19).sin()));

        let kernel = run(&params, |t, vars| {
            t.edge_score(g.clone(), vars[0], vars[1], Some(vars[2]))
        });
        let reference = run(&params, |t, vars| {
            let from_src = t.gather_rows(vars[0], src.clone());
            let from_dst = t.gather_rows(vars[1], dst.clone());
            let sum = t.add(from_src, from_dst);
            t.add(sum, vars[2])
        });
        assert_close(&kernel, &reference);
    }

    /// Edge aggregation of per-message payload rows: kernel vs
    /// weight-broadcast → scatter-add.
    #[test]
    fn edge_aggregate_matches_scatter((n, msgs) in graph(), feat in 1usize..4) {
        let g = Arc::new(CsrGraph::from_messages(n, &msgs));
        let dst = indices(g.dst_ids());
        let m = g.num_messages();

        let mut params = ParamStore::new();
        params.register("w", Matrix::from_fn(m, 1, |r, _| ((r * 5 + 1) as f32 * 0.53).cos()));
        params.register("x", Matrix::from_fn(m, feat, |r, c| ((r * 7 + c * 3 + 4) as f32 * 0.31).sin()));

        let kernel = run(&params, |t, vars| t.edge_aggregate(g.clone(), vars[0], vars[1]));
        let reference = run(&params, |t, vars| {
            let weighted = t.mul_col_broadcast(vars[1], vars[0]);
            t.scatter_add_rows(weighted, dst.clone(), n)
        });
        assert_close(&kernel, &reference);
    }

    /// Forward values of g-SpMM also match the fully dense adjacency
    /// matmul (`to_dense_adj · h`), tying the sparse kernels to the
    /// textbook formulation they replace.
    #[test]
    fn gspmm_matches_dense_adjacency((n, msgs) in graph(), feat in 1usize..4) {
        let g = CsrGraph::from_messages(n, &msgs);
        let m = g.num_messages();
        let w: Vec<f32> = (0..m).map(|r| ((r * 5 + 1) as f32 * 0.53).cos()).collect();
        let h = Matrix::from_fn(n, feat, |r, c| ((r * 7 + c * 3) as f32 * 0.37).sin());
        let sparse = g.spmm_ew(&w, &h);
        let dense = amdgcnn_tensor::matmul::matmul(&g.to_dense_adj(&w), &h);
        prop_assert!(max_abs_diff(&sparse, &dense) <= TOL);
    }
}
