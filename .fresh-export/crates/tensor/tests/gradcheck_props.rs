//! Property-based finite-difference validation of every autodiff op.
//!
//! Each test perturbs every parameter element and compares the central
//! difference of the scalar loss against the analytic gradient from the
//! tape. Ops with kinks (ReLU family, max pooling, sort pooling) are fed
//! inputs bounded away from their non-differentiable sets.

use amdgcnn_tensor::autograd::gradcheck::check_gradients;
use amdgcnn_tensor::{Conv1dSpec, CsrMatrix, Matrix, ParamStore, Tape, Var};
use proptest::prelude::*;
use std::sync::Arc;

const EPS: f32 = 1e-2;
const TOL: f32 = 4e-2;

/// Strategy: matrix with the given shape and values in [-1.5, 1.5].
fn mat(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.5f32..1.5, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Strategy: matrix whose elements stay away from zero (for kinked ops).
fn mat_away_from_zero(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(0.2f32..1.5, rows * cols).prop_flat_map(move |mags| {
        proptest::collection::vec(proptest::bool::ANY, rows * cols).prop_map(move |signs| {
            let data = mags
                .iter()
                .zip(signs.iter())
                .map(|(&m, &s)| if s { m } else { -m })
                .collect();
            Matrix::from_vec(rows, cols, data)
        })
    })
}

/// Run a gradient check for a single-parameter loss.
fn check1(w: Matrix, build: impl Fn(&mut Tape, Var) -> Var) {
    let mut params = ParamStore::new();
    let id = params.register("w", w);
    let res = check_gradients(
        &params,
        |tape, ps| {
            let v = tape.param(id, ps.get(id).clone());
            build(tape, v)
        },
        EPS,
        TOL,
    );
    if let Err(e) = res {
        panic!("gradient mismatch: {e}");
    }
}

/// Run a gradient check for a two-parameter loss.
fn check2(a: Matrix, b: Matrix, build: impl Fn(&mut Tape, Var, Var) -> Var) {
    let mut params = ParamStore::new();
    let ia = params.register("a", a);
    let ib = params.register("b", b);
    let res = check_gradients(
        &params,
        |tape, ps| {
            let va = tape.param(ia, ps.get(ia).clone());
            let vb = tape.param(ib, ps.get(ib).clone());
            build(tape, va, vb)
        },
        EPS,
        TOL,
    );
    if let Err(e) = res {
        panic!("gradient mismatch: {e}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn grad_matmul(a in mat(3, 4), b in mat(4, 2)) {
        check2(a, b, |t, va, vb| {
            let y = t.matmul(va, vb);
            t.mean_all(y)
        });
    }

    #[test]
    fn grad_add_sub_mul(a in mat(3, 3), b in mat(3, 3)) {
        check2(a.clone(), b.clone(), |t, va, vb| {
            let s = t.add(va, vb);
            t.mean_all(s)
        });
        check2(a.clone(), b.clone(), |t, va, vb| {
            let s = t.sub(va, vb);
            let sq = t.mul(s, s);
            t.mean_all(sq)
        });
        check2(a, b, |t, va, vb| {
            let s = t.mul(va, vb);
            t.mean_all(s)
        });
    }

    #[test]
    fn grad_row_broadcast(x in mat(4, 3), bias in mat(1, 3)) {
        check2(x, bias, |t, vx, vb| {
            let y = t.add_row_broadcast(vx, vb);
            let y2 = t.mul(y, y);
            t.mean_all(y2)
        });
    }

    #[test]
    fn grad_col_broadcast(x in mat(4, 3), col in mat(4, 1)) {
        check2(x, col, |t, vx, vc| {
            let y = t.mul_col_broadcast(vx, vc);
            let y2 = t.mul(y, y);
            t.mean_all(y2)
        });
    }

    #[test]
    fn grad_scale_add_scalar(x in mat(2, 5)) {
        check1(x.clone(), |t, v| {
            let y = t.scale(v, -2.5);
            let y2 = t.mul(y, y);
            t.mean_all(y2)
        });
        check1(x, |t, v| {
            let y = t.add_scalar(v, 0.7);
            let y2 = t.mul(y, y);
            t.mean_all(y2)
        });
    }

    #[test]
    fn grad_tanh_sigmoid(x in mat(3, 4)) {
        check1(x.clone(), |t, v| {
            let y = t.tanh(v);
            t.mean_all(y)
        });
        check1(x, |t, v| {
            let y = t.sigmoid(v);
            t.mean_all(y)
        });
    }

    #[test]
    fn grad_relu_family(x in mat_away_from_zero(3, 4)) {
        check1(x.clone(), |t, v| {
            let y = t.relu(v);
            t.mean_all(y)
        });
        check1(x, |t, v| {
            let y = t.leaky_relu(v, 0.2);
            t.mean_all(y)
        });
    }

    #[test]
    fn grad_softmax_rows(x in mat(3, 4)) {
        // Weighted sum of softmax outputs gives a non-trivial Jacobian path.
        check1(x, |t, v| {
            let s = t.softmax_rows(v);
            let w = t.leaf(Matrix::from_fn(3, 4, |r, c| ((r + 2 * c) % 5) as f32 - 2.0));
            let p = t.mul(s, w);
            t.mean_all(p)
        });
    }

    #[test]
    fn grad_concat_cols(a in mat(3, 2), b in mat(3, 4)) {
        check2(a, b, |t, va, vb| {
            let c = t.concat_cols(&[va, vb]);
            let c2 = t.mul(c, c);
            t.mean_all(c2)
        });
    }

    #[test]
    fn grad_gather_scatter(x in mat(5, 3)) {
        let idx = Arc::new(vec![4usize, 0, 2, 2]);
        let idx2 = Arc::new(vec![1usize, 1, 0, 3]);
        check1(x, move |t, v| {
            let g = t.gather_rows(v, idx.clone());
            let s = t.scatter_add_rows(g, idx2.clone(), 4);
            let s2 = t.mul(s, s);
            t.mean_all(s2)
        });
    }

    #[test]
    fn grad_segment_softmax(x in mat(6, 1)) {
        let segs = Arc::new(vec![(0usize, 2usize), (2, 3), (3, 6)]);
        check1(x, move |t, v| {
            let s = t.segment_softmax(v, segs.clone());
            let w = t.leaf(Matrix::from_fn(6, 1, |r, _| (r as f32 - 2.5) * 0.8));
            let p = t.mul(s, w);
            t.mean_all(p)
        });
    }

    #[test]
    fn grad_spmm(x in mat(4, 3)) {
        let adj = Arc::new(CsrMatrix::from_triplets(
            4,
            4,
            &[(0, 1, 0.5), (1, 0, 0.5), (1, 2, 1.0), (2, 3, -0.7), (3, 3, 0.3)],
        ));
        let adj_t = Arc::new(adj.transpose());
        check1(x, move |t, v| {
            let y = t.spmm(adj.clone(), adj_t.clone(), v);
            let y2 = t.mul(y, y);
            t.mean_all(y2)
        });
    }

    #[test]
    fn grad_sum_rows(x in mat(4, 3)) {
        check1(x, |t, v| {
            let s = t.sum_rows(v);
            let s2 = t.mul(s, s);
            t.mean_all(s2)
        });
    }

    #[test]
    fn grad_reshape_dropout(x in mat(2, 6)) {
        check1(x.clone(), |t, v| {
            let r = t.reshape(v, 3, 4);
            let r2 = t.mul(r, r);
            t.mean_all(r2)
        });
        let mask: Arc<Vec<f32>> =
            Arc::new((0..12).map(|i| if i % 3 == 0 { 0.0 } else { 1.5 }).collect());
        check1(x, move |t, v| {
            let d = t.dropout(v, mask.clone());
            let d2 = t.mul(d, d);
            t.mean_all(d2)
        });
    }

    #[test]
    fn grad_cross_entropy(x in mat(3, 4)) {
        check1(x, |t, v| {
            t.softmax_cross_entropy(v, Arc::new(vec![1, 3, 0]))
        });
    }

    #[test]
    fn grad_conv1d(x in mat(2, 7), w in mat(3, 6), b in mat(3, 1)) {
        // Three-parameter check: fold bias into a second check pairing.
        let mut params = ParamStore::new();
        let ix = params.register("x", x);
        let iw = params.register("w", w);
        let ib = params.register("b", b);
        let spec = Conv1dSpec { in_channels: 2, out_channels: 3, kernel: 3, stride: 2 };
        let res = check_gradients(
            &params,
            |tape, ps| {
                let vx = tape.param(ix, ps.get(ix).clone());
                let vw = tape.param(iw, ps.get(iw).clone());
                let vb = tape.param(ib, ps.get(ib).clone());
                let y = tape.conv1d(vx, vw, vb, spec);
                let y2 = tape.mul(y, y);
                tape.mean_all(y2)
            },
            EPS,
            TOL,
        );
        prop_assert!(res.is_ok(), "{res:?}");
    }
}

/// Max pooling with clearly separated values so the argmax is stable under
/// the finite-difference perturbation.
#[test]
fn grad_max_pool1d_stable_argmax() {
    let x = Matrix::from_vec(
        2,
        6,
        vec![5.0, 1.0, 2.0, 6.0, 9.0, 0.5, 1.0, 7.0, 3.0, 0.0, 2.0, 8.0],
    );
    check1(x, |t, v| {
        let p = t.max_pool1d(v, 2);
        let p2 = t.mul(p, p);
        t.mean_all(p2)
    });
}

/// Sort pooling with well-separated last-channel values so the ranking is
/// stable under perturbation.
#[test]
fn grad_sort_pool_stable_order() {
    let x = Matrix::from_vec(
        4,
        3,
        vec![0.3, 0.1, 4.0, -0.2, 0.5, 1.0, 0.7, -0.4, 3.0, 0.2, 0.9, 2.0],
    );
    // k < N exercises truncation; gradient flows only through kept rows.
    check1(x.clone(), |t, v| {
        let p = t.sort_pool(v, 3);
        let p2 = t.mul(p, p);
        t.mean_all(p2)
    });
    // k > N exercises zero padding.
    check1(x, |t, v| {
        let p = t.sort_pool(v, 6);
        let p2 = t.mul(p, p);
        t.mean_all(p2)
    });
}

/// A deep composite expression mixing many ops — exercises gradient
/// accumulation across fan-out and long chains at once.
#[test]
fn grad_deep_composite() {
    let w1 = Matrix::from_fn(3, 4, |r, c| ((r * 4 + c) as f32 * 0.13).sin());
    let w2 = Matrix::from_fn(4, 2, |r, c| ((r * 2 + c) as f32 * 0.29).cos() * 0.5);
    check2(w1, w2, |t, va, vb| {
        let x = t.leaf(Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.4 - 0.5));
        let h1 = t.matmul(x, va); // [2,4]
        let h1a = t.tanh(h1);
        let h2 = t.matmul(h1a, vb); // [2,2]
        let h2s = t.sigmoid(h2);
        let cat = t.concat_cols(&[h1a, h2s]); // [2,6]
        let sum = t.sum_rows(cat); // [1,6]
        let sq = t.mul(sum, sum);
        t.mean_all(sq)
    });
}
