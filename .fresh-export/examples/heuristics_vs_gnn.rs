//! Classical heuristics vs supervised heuristic learning (paper §I and
//! §VI-A): score a citation-network link-prediction task with common
//! neighbors, Jaccard, Adamic–Adar, resource allocation, preferential
//! attachment, and Katz, then train both SEAL models on the same split.
//!
//! ```text
//! cargo run --release --example heuristics_vs_gnn
//! ```

use am_dgcnn::metrics::roc_auc;
use am_dgcnn::{Experiment, GnnKind, Hyperparams};
use amdgcnn_data::{cora_like, CoraConfig};
use amdgcnn_graph::heuristics::Heuristic;
use amdgcnn_graph::katz::{katz_score, KatzConfig};

fn main() {
    let dataset = cora_like(&CoraConfig {
        num_nodes: 1200,
        num_edges: 2400,
        ..Default::default()
    });
    println!(
        "cora-like citation graph: {} papers, {} citations; {} test pairs\n",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.test.len()
    );

    let labels: Vec<bool> = dataset.test.iter().map(|l| l.class == 1).collect();
    println!("{:<26} {:>8}", "method", "AUC");
    for h in Heuristic::ALL {
        let scores: Vec<f32> = dataset
            .test
            .iter()
            .map(|l| h.score(&dataset.graph, l.u, l.v) as f32)
            .collect();
        println!("{:<26} {:>8.3}", h.name(), roc_auc(&scores, &labels));
    }
    let katz = KatzConfig::default();
    let scores: Vec<f32> = dataset
        .test
        .iter()
        .map(|l| katz_score(&dataset.graph, l.u, l.v, &katz) as f32)
        .collect();
    println!("{:<26} {:>8.3}", "katz", roc_auc(&scores, &labels));

    // Supervised heuristic learning: the SEAL models learn their own
    // heuristic from enclosing subgraphs.
    let hyper = Hyperparams {
        lr: 3.2e-3,
        hidden_dim: 32,
        sort_k: 30,
    };
    for gnn in [
        GnnKind::Gat {
            edge_attrs: false,
            heads: 1,
        },
        GnnKind::Gcn,
    ] {
        let experiment = Experiment::builder().gnn(gnn).hyper(hyper).seed(11).build();
        let metrics = experiment.run(&dataset, 8).expect("run");
        println!("{:<26} {:>8.3}", gnn.name(), metrics.auc);
    }
    println!(
        "\nThe learned models beat every low-order heuristic without being told\nwhich heuristic family fits this graph; path heuristics (Katz) can win\non strongly clustered synthetics but fail on other families (SS VI-A)."
    );
}
