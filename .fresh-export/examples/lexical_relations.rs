//! Knowledge-base completion on a WordNet-18-like lexical graph: predict
//! the *relation type* of unlabeled word-sense pairs from nothing but the
//! edge classes around them (no node features exist), and show the top-3
//! relation candidates per pair.
//!
//! This is the dataset where the paper's contrast is starkest: vanilla
//! DGCNN is a coin flip, AM-DGCNN recovers the relations from edge
//! attributes alone.
//!
//! ```text
//! cargo run --release --example lexical_relations
//! ```

use am_dgcnn::{predict_probs, prepare_batch, Experiment, FeatureConfig, GnnKind, Hyperparams};
use amdgcnn_data::{wn18_like, Wn18Config};

fn main() {
    let dataset = wn18_like(&Wn18Config::default());
    println!(
        "WordNet-18-like graph: {} word senses, {} lexical links, {} relation classes",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes
    );

    let hyper = Hyperparams {
        lr: 5e-3,
        hidden_dim: 64,
        sort_k: 30,
    };
    let experiment = Experiment::builder()
        .gnn(GnnKind::am_dgcnn())
        .hyper(hyper)
        .seed(7)
        .build();
    let mut session = experiment.session(&dataset, None).expect("session");
    println!(
        "training AM-DGCNN on {} labeled links...",
        session.train_samples.len()
    );
    session
        .trainer
        .train(&session.model, &mut session.ps, &session.train_samples, 10)
        .expect("train");
    let metrics = session.evaluate();
    println!(
        "test AUC {:.3}, AP {:.3}, accuracy {:.3}\n",
        metrics.auc, metrics.ap, metrics.accuracy
    );

    // Rank relation candidates for a few unlabeled pairs.
    let fcfg = FeatureConfig::for_graph(dataset.graph.num_node_types());
    let pairs: Vec<_> = dataset.test.iter().take(6).cloned().collect();
    let prepared = prepare_batch(&dataset, &pairs, &fcfg);
    let probs = predict_probs(&session.model, &session.ps, &prepared);

    println!("relation-type completion (top-3 candidates per pair):");
    for (i, link) in pairs.iter().enumerate() {
        let mut ranked: Vec<(usize, f32)> = (0..dataset.num_classes)
            .map(|c| (c, probs.get(i, c)))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite probabilities"));
        let top: Vec<String> = ranked
            .iter()
            .take(3)
            .map(|(c, p)| format!("rel{:02} {:.0}%", c, p * 100.0))
            .collect();
        let hit = if ranked[0].0 == link.class {
            "✓"
        } else {
            " "
        };
        println!(
            "  sense#{:<5} ↔ sense#{:<5} true=rel{:02}  {hit}  [{}]",
            link.u,
            link.v,
            link.class,
            top.join(", ")
        );
    }
}
