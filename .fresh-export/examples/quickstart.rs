//! Quickstart: train AM-DGCNN on a small synthetic knowledge graph and
//! classify held-out links.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the whole public API surface: generate a dataset, pick the model
//! variant, train for a few epochs, and read the paper's metrics.

use am_dgcnn::{Experiment, GnnKind, Hyperparams};
use amdgcnn_data::{wn18_like, Wn18Config};

fn main() {
    // 1. A WordNet-18-like knowledge graph: homogeneous nodes, 18 edge
    //    classes, the link class encoded purely in surrounding edge types.
    let dataset = wn18_like(&Wn18Config {
        num_nodes: 1200,
        num_edges: 4800,
        train_links: 700,
        test_links: 150,
        ..Default::default()
    });
    println!(
        "dataset: {} — {} nodes, {} edges, {} link classes, {} train / {} test links",
        dataset.name,
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes,
        dataset.train.len(),
        dataset.test.len()
    );

    // 2. Hyperparameters from the paper's Table I space.
    let hyper = Hyperparams {
        lr: 5e-3,
        hidden_dim: 32,
        sort_k: 30,
    };

    // 3. Train both models and compare — the paper's core experiment.
    for gnn in [GnnKind::am_dgcnn(), GnnKind::Gcn] {
        let experiment = Experiment::builder().gnn(gnn).hyper(hyper).seed(42).build();
        let metrics = experiment.run(&dataset, 10).expect("run");
        println!(
            "{:<14} AUC {:.3}  AP {:.3}  accuracy {:.3}",
            gnn.name(),
            metrics.auc,
            metrics.ap,
            metrics.accuracy
        );
    }
    println!("\nAM-DGCNN reads the edge attributes the vanilla model cannot see.");
}
