//! Drug-repurposing scenario (the paper's motivating PrimeKG use case):
//! train AM-DGCNN on known drug–disease relationships, then classify
//! unlabeled drug–disease candidates as *indication*, *off-label use*, or
//! *contra-indication* with class probabilities.
//!
//! ```text
//! cargo run --release --example drug_repurposing
//! ```

use am_dgcnn::{predict_probs, prepare_batch, Experiment, FeatureConfig, Hyperparams};
use amdgcnn_data::{primekg_like, LabeledLink, PrimeKgConfig};

const CLASS_NAMES: [&str; 3] = ["indication", "off-label use", "contra-indication"];

fn main() {
    let dataset = primekg_like(&PrimeKgConfig::default());
    println!(
        "PrimeKG-like graph: {} nodes / {} edges across {} node types and {} relations",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.graph.num_node_types(),
        dataset.graph.num_edge_types()
    );

    // Train the full AM-DGCNN pipeline on the labeled drug–disease links.
    let hyper = Hyperparams {
        lr: 4e-3,
        hidden_dim: 32,
        sort_k: 40,
    };
    let experiment = Experiment::builder()
        .gnn(am_dgcnn::GnnKind::am_dgcnn())
        .hyper(hyper)
        .seed(2024)
        .build();
    let mut session = experiment.session(&dataset, None).expect("session");
    println!(
        "training AM-DGCNN on {} known drug–disease links...",
        session.train_samples.len()
    );
    session
        .trainer
        .train(&session.model, &mut session.ps, &session.train_samples, 10)
        .expect("train");
    let metrics = session.evaluate();
    println!(
        "held-out validation: AUC {:.3}, AP {:.3}, accuracy {:.3}\n",
        metrics.auc, metrics.ap, metrics.accuracy
    );

    // "Screen" a panel of unverified candidates: here, test links with the
    // label withheld — in a real deployment these would be gaps in the KG.
    let candidates: Vec<LabeledLink> = dataset.test.iter().take(8).cloned().collect();
    let fcfg = FeatureConfig::for_graph(dataset.graph.num_node_types());
    let prepared = prepare_batch(&dataset, &candidates, &fcfg);
    let probs = predict_probs(&session.model, &session.ps, &prepared);

    println!("candidate screening (drug, disease) → predicted relationship:");
    for (i, link) in candidates.iter().enumerate() {
        let pred = probs.argmax_row(i);
        let conf = probs.get(i, pred);
        let truth = CLASS_NAMES[link.class];
        let mark = if pred == link.class { "✓" } else { "✗" };
        println!(
            "  drug#{:<5} disease#{:<5} → {:<17} ({:>5.1}% confident) [truth: {truth}] {mark}",
            link.u,
            link.v,
            CLASS_NAMES[pred],
            conf * 100.0
        );
    }
}
