pub fn workspace_ok() -> bool {
    true
}
