#!/bin/bash
# Regenerates every table and figure of the paper. Outputs land in results/.
set -u
cd "$(dirname "$0")"
BINS="table2_datasets table3_accuracy fig3_cora_epochs fig4_primekg_epochs fig5_biokg_epochs fig6_wn18_epochs fig7_primekg_samples fig8_biokg_samples fig9_wn18_samples ablation_edge_attrs ablation_subgraph_mode baseline_heuristics"
for bin in $BINS; do
  echo "=== $bin ($(date +%H:%M:%S)) ==="
  ./target/release/$bin > results/$bin.txt 2> results/$bin.log || echo "FAILED: $bin"
done
echo "=== table1_autotune (wn18, budget 8) ($(date +%H:%M:%S)) ==="
./target/release/table1_autotune wn18 8 > results/table1_autotune.txt 2> results/table1_autotune.log || echo "FAILED: table1_autotune"
echo "ALL_DONE ($(date +%H:%M:%S))"
