//! End-to-end integration tests: dataset generation → subgraph extraction →
//! feature construction → training → evaluation, across all four dataset
//! families at miniature scale.

use am_dgcnn::{Experiment, GnnKind, Hyperparams};
use amdgcnn_data::{
    biokg_like, cora_like, primekg_like, wn18_like, BioKgConfig, CoraConfig, Dataset,
    PrimeKgConfig, Wn18Config,
};

fn fast_hyper() -> Hyperparams {
    Hyperparams {
        lr: 5e-3,
        hidden_dim: 8,
        sort_k: 10,
    }
}

fn run_both(ds: &Dataset, epochs: usize) -> (f64, f64) {
    let am = if ds.edge_attrs.dim() > 0 {
        GnnKind::am_dgcnn()
    } else {
        GnnKind::Gat {
            edge_attrs: false,
            heads: 1,
        }
    };
    let a = Experiment::new(am, fast_hyper(), 1)
        .run(ds, epochs)
        .expect("run");
    let v = Experiment::new(GnnKind::Gcn, fast_hyper(), 1)
        .run(ds, epochs)
        .expect("run");
    (a.auc, v.auc)
}

#[test]
fn primekg_pipeline_runs_and_produces_valid_metrics() {
    let ds = primekg_like(&PrimeKgConfig::tiny());
    let (am, van) = run_both(&ds, 2);
    assert!((0.0..=1.0).contains(&am));
    assert!((0.0..=1.0).contains(&van));
}

#[test]
fn biokg_pipeline_runs() {
    let ds = biokg_like(&BioKgConfig::tiny());
    let (am, van) = run_both(&ds, 2);
    assert!((0.0..=1.0).contains(&am));
    assert!((0.0..=1.0).contains(&van));
}

#[test]
fn wn18_pipeline_runs() {
    let ds = wn18_like(&Wn18Config::tiny());
    let (am, van) = run_both(&ds, 2);
    assert!((0.0..=1.0).contains(&am));
    assert!((0.0..=1.0).contains(&van));
}

#[test]
fn cora_pipeline_runs_without_edge_attrs() {
    let ds = cora_like(&CoraConfig::tiny());
    let (am, van) = run_both(&ds, 2);
    assert!((0.0..=1.0).contains(&am));
    assert!((0.0..=1.0).contains(&van));
}

#[test]
fn whole_pipeline_is_deterministic() {
    let ds = wn18_like(&Wn18Config::tiny());
    let run = || {
        Experiment::new(GnnKind::am_dgcnn(), fast_hyper(), 9)
            .run(&ds, 2)
            .expect("run")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must give identical end-to-end metrics");
}

#[test]
fn different_seeds_give_different_models() {
    let ds = wn18_like(&Wn18Config::tiny());
    let a = Experiment::new(GnnKind::am_dgcnn(), fast_hyper(), 1)
        .run(&ds, 2)
        .expect("run");
    let b = Experiment::new(GnnKind::am_dgcnn(), fast_hyper(), 2)
        .run(&ds, 2)
        .expect("run");
    assert_ne!(a, b, "different init seeds should not coincide exactly");
}

#[test]
fn batch_size_one_trains() {
    let ds = wn18_like(&Wn18Config::tiny());
    let exp = Experiment::builder()
        .gnn(GnnKind::Gcn)
        .hyper(fast_hyper())
        .seed(3)
        .batch_size(1)
        .build();
    let m = exp.run(&ds, 1).expect("run");
    assert!((0.0..=1.0).contains(&m.auc));
}

#[test]
fn epoch_checkpointing_is_consistent_with_direct_training() {
    let ds = primekg_like(&PrimeKgConfig::tiny());
    let exp = Experiment::new(GnnKind::am_dgcnn(), fast_hyper(), 5);
    let stepped = exp
        .run_session(exp.session(&ds, None).expect("session"), &[1, 2, 3])
        .expect("checkpoints");
    let direct = exp.run(&ds, 3).expect("run");
    assert_eq!(stepped[2], direct, "incremental training must be exact");
}
