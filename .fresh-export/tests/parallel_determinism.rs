//! The trainer's headline concurrency claim: gradients are computed in
//! parallel but reduced in sample order, so results are bit-for-bit
//! identical regardless of how many rayon workers run — the "data-race
//! freedom plus determinism" property the HPC design leans on.

use am_dgcnn::{predict_probs, Experiment, GnnKind, Hyperparams, TrainConfig};
use amdgcnn_data::{wn18_like, Wn18Config};

fn train_losses_and_probs(threads: usize) -> (Vec<f32>, Vec<f32>) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    pool.install(|| {
        let ds = wn18_like(&Wn18Config::tiny());
        let mut exp = Experiment::new(
            GnnKind::am_dgcnn(),
            Hyperparams {
                lr: 5e-3,
                hidden_dim: 8,
                sort_k: 10,
            },
            17,
        );
        exp.train = TrainConfig {
            lr: 5e-3,
            seed: 17,
            ..Default::default()
        };
        let mut session = exp.session(&ds, None).expect("session");
        session
            .trainer
            .train(&session.model, &mut session.ps, &session.train_samples, 3)
            .expect("train");
        let losses = session.trainer.history.iter().map(|e| e.loss).collect();
        let probs = predict_probs(&session.model, &session.ps, &session.test_samples);
        (losses, probs.data().to_vec())
    })
}

#[test]
fn training_is_identical_across_thread_counts() {
    let (l1, p1) = train_losses_and_probs(1);
    let (l4, p4) = train_losses_and_probs(4);
    assert_eq!(l1, l4, "loss history must not depend on worker count");
    assert_eq!(p1, p4, "predictions must not depend on worker count");
}

#[test]
fn sample_preparation_is_identical_across_thread_counts() {
    use am_dgcnn::{prepare_batch, FeatureConfig};
    let ds = wn18_like(&Wn18Config::tiny());
    let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
    let serial = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool")
        .install(|| prepare_batch(&ds, &ds.train, &fcfg));
    let parallel = prepare_batch(&ds, &ds.train, &fcfg);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(parallel.iter()) {
        assert_eq!(a.features, b.features);
        assert_eq!(a.label, b.label);
        assert_eq!(a.num_edges, b.num_edges);
    }
}
