//! Observability must be a pure observer: attaching an enabled registry to
//! a training run may not change a single bit of the result. Clock reads
//! happen only inside the obs layer and never feed back into the
//! computation, so losses and predictions are identical with
//! instrumentation on or off — at any rayon worker count.

use am_dgcnn::{predict_probs, Experiment, GnnKind, Hyperparams};
use amdgcnn_data::{wn18_like, Wn18Config};
use amdgcnn_obs::Obs;

/// Train 3 epochs on the tiny WN18-like graph under `threads` rayon
/// workers, recording into `obs`, and return the per-epoch loss history
/// and the flat test-split probabilities.
fn train_losses_and_probs(threads: usize, obs: Obs) -> (Vec<f32>, Vec<f32>) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    pool.install(|| {
        let ds = wn18_like(&Wn18Config::tiny());
        let exp = Experiment::builder()
            .gnn(GnnKind::am_dgcnn())
            .hyper(Hyperparams {
                lr: 5e-3,
                hidden_dim: 8,
                sort_k: 10,
            })
            .seed(17)
            .observe(obs)
            .build();
        let mut session = exp.session(&ds, None).expect("session");
        session
            .trainer
            .train(&session.model, &mut session.ps, &session.train_samples, 3)
            .expect("train");
        let losses = session.trainer.history.iter().map(|e| e.loss).collect();
        let probs = predict_probs(&session.model, &session.ps, &session.test_samples);
        (losses, probs.data().to_vec())
    })
}

#[test]
fn instrumented_training_is_bit_identical_to_uninstrumented() {
    let obs1 = Obs::enabled();
    let obs4 = Obs::enabled();
    let (l_off1, p_off1) = train_losses_and_probs(1, Obs::disabled());
    let (l_on1, p_on1) = train_losses_and_probs(1, obs1.clone());
    let (l_off4, p_off4) = train_losses_and_probs(4, Obs::disabled());
    let (l_on4, p_on4) = train_losses_and_probs(4, obs4.clone());

    // Enabled vs disabled at each thread count: bit-identical.
    assert_eq!(l_off1, l_on1, "1 thread: obs must not change losses");
    assert_eq!(p_off1, p_on1, "1 thread: obs must not change predictions");
    assert_eq!(l_off4, l_on4, "4 threads: obs must not change losses");
    assert_eq!(p_off4, p_on4, "4 threads: obs must not change predictions");

    // And across thread counts, instrumented runs still agree with each
    // other (the parallel-determinism property survives instrumentation).
    assert_eq!(l_on1, l_on4, "losses must not depend on worker count");
    assert_eq!(p_on1, p_on4, "predictions must not depend on worker count");

    // The instrumented runs really did record: this test must not pass
    // vacuously with a no-op registry.
    for obs in [&obs1, &obs4] {
        let report = obs.report();
        for span in [
            "pipeline/sample",
            "train/epoch",
            "train/forward",
            "train/backward",
            "train/optimizer_step",
        ] {
            assert!(
                report.span(span).map(|s| s.count).unwrap_or(0) > 0,
                "span {span} recorded nothing — instrumentation was inert"
            );
        }
    }
}
