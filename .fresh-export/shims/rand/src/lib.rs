//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal API surface it actually uses: a deterministic
//! [`rngs::StdRng`] (xoshiro256** seeded through SplitMix64), the
//! [`SeedableRng`]/[`Rng`]/[`RngExt`] traits, and [`seq::SliceRandom`].
//!
//! The generator is *not* stream-compatible with upstream `rand`; every
//! consumer in this workspace only relies on determinism for a fixed seed,
//! never on a specific stream.

#![warn(missing_docs)]

/// Core random-number generator interface: raw integer output.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Fixed-size seed accepted by [`SeedableRng::from_seed`].
    type Seed: AsMut<[u8]> + Default;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a single `u64`, expanded with SplitMix64 (the same
    /// convenience upstream `rand` offers).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be produced uniformly at random by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw(rng: &mut impl Rng) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw(rng: &mut impl Rng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw(rng: &mut impl Rng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw(rng: &mut impl Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn draw(rng: &mut impl Rng) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw(rng: &mut impl Rng) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw(rng: &mut impl Rng) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut impl Rng) -> T;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire-style rejection.
fn uniform_u64_below(rng: &mut impl Rng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the mapping exactly uniform.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        // Wide multiply: high word is the candidate, low word the rejection
        // test.
        let wide = (v as u128) * (bound as u128);
        let low = wide as u64;
        if low >= zone {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut impl Rng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut impl Rng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::draw(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`Rng`]
/// (mirrors the `Rng` extension surface of upstream `rand` 0.9+).
pub trait RngExt: Rng {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A value uniformly distributed over `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: Rng> RngExt for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Small, fast, and passes BigCrush; not cryptographic, which matches
    /// how the workspace uses it (initialization, shuffling, dropout).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngExt};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle(&mut self, rng: &mut impl Rng);

        /// Uniformly random element, `None` on an empty slice.
        fn choose(&self, rng: &mut impl Rng) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle(&mut self, rng: &mut impl Rng) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose(&self, rng: &mut impl Rng) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.random::<u64>() == b.random::<u64>());
        assert_eq!(same.count(), 0);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f = rng.random::<f32>();
            assert!((0.0..1.0).contains(&f));
            let d = rng.random::<f64>();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn mean_of_unit_floats_is_centered() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
