//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this crate keeps the
//! workspace's benchmark targets compiling and runnable: the same
//! `Criterion`/`benchmark_group`/`Bencher` surface, implemented as a simple
//! wall-clock timing loop (short warmup, then `sample_size` timed samples)
//! that prints mean and minimum per-iteration times. No statistics, plots,
//! or saved baselines.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the benches here already use).
pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 10;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
            _parent: self,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), DEFAULT_SAMPLES, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmark a closure that also receives `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (printing happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// A function + parameter label, e.g. `BenchmarkId::new("nn", 64)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Conversion into the printable benchmark label.
pub trait IntoBenchmarkId {
    /// The label shown in output.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// How batched setup output is passed to the routine (size hints are
/// irrelevant to this shim's timing loop).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    /// Recorded per-sample durations of the most recent `iter*` call.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, running it once per sample after a warmup call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {label:<40} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "bench {label:<40} mean {:>12?}  min {:>12?}  ({} samples)",
        mean,
        min,
        bencher.samples.len()
    );
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &n| b.iter(|| n * n));
        group.finish();
    }

    criterion_group!(benches, quick_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 2,
        };
        bencher.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::LargeInput);
        assert_eq!(bencher.samples.len(), 2);
    }
}
