//! Offline stand-in for `serde_json`.
//!
//! Compact (no-whitespace) JSON output identical in shape to upstream
//! `serde_json::to_string`, plus a full JSON parser, both working through the
//! `serde` shim's `Value` data model.
//!
//! Float formatting uses Rust's `{:?}`, which (like upstream's ryu) emits the
//! shortest string that round-trips the exact `f64` — so
//! serialize-then-parse is value-exact for finite floats. Non-finite floats
//! serialize as `null`, matching upstream behaviour.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Error raised by [`from_str`]/[`from_slice`] on malformed input or a shape
/// mismatch, and (never, in practice) by the writers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    fn at(pos: usize, msg: impl std::fmt::Display) -> Self {
        Self::new(format!("{msg} at byte {pos}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is shortest-round-trip and always keeps a `.0` or
                // exponent, so floats stay floats on re-parse.
                let _ = write!(out, "{f:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at(p.pos, "trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(self.pos, format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::at(self.pos, format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::at(
                self.pos,
                format!("unexpected character `{}`", other as char),
            )),
            None => Err(Error::at(self.pos, "unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at(self.pos, "expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::at(self.pos, "expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::at(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::at(self.pos, "invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::at(self.pos, "invalid code point"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::at(self.pos, "invalid code point"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::at(
                                self.pos,
                                format!("invalid escape `\\{}`", other as char),
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char (input came from &str,
                    // so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(Error::at(self.pos, "unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::at(self.pos, "unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::at(self.pos, "truncated \\u escape"))?;
        let s =
            std::str::from_utf8(chunk).map_err(|_| Error::at(self.pos, "invalid \\u escape"))?;
        let v =
            u32::from_str_radix(s, 16).map_err(|_| Error::at(self.pos, "invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at(start, "invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::at(start, format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_objects() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("cora-like".to_string())),
            ("n".to_string(), Value::UInt(3)),
            ("f".to_string(), Value::Float(0.5)),
            ("none".to_string(), Value::Null),
        ]);
        let mut out = String::new();
        write_value(&mut out, &v);
        assert_eq!(out, r#"{"name":"cora-like","n":3,"f":0.5,"none":null}"#);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [
            0.1f64,
            -1.5,
            f64::from(1.0f32 / 3.0),
            1e300,
            5e-324,
            0.0,
            -0.0,
        ] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {s}");
        }
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let s = "line\nbreak \"quoted\" back\\slash \t unicode: ünïcödé 🦀";
        let json = to_string(s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parses_nested_structures() {
        let v: Value = from_str(r#" { "a" : [ 1 , -2.5 , true , null ] , "b" : { } } "#).unwrap();
        assert_eq!(
            v,
            Value::Object(vec![
                (
                    "a".to_string(),
                    Value::Array(vec![
                        Value::UInt(1),
                        Value::Float(-2.5),
                        Value::Bool(true),
                        Value::Null,
                    ])
                ),
                ("b".to_string(), Value::Object(vec![])),
            ])
        );
    }

    #[test]
    fn surrogate_pairs_decode() {
        let back: String = from_str(r#""🦀""#).unwrap();
        assert_eq!(back, "🦀");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>(r#""\q""#).is_err());
    }

    #[test]
    fn vec_of_f32_round_trips() {
        let v = vec![1.0f32 / 3.0, -0.25, 7.0];
        let json = to_string(&v).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
