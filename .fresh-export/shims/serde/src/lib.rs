//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of serde the workspace relies on: `#[derive(Serialize, Deserialize)]`
//! on plain named-field structs and fieldless/struct-variant enums, routed
//! through a concrete [`Value`] data model instead of serde's
//! visitor machinery. `serde_json` (the sibling shim) turns [`Value`] into
//! JSON text and back.
//!
//! Design notes:
//! - Object keys keep insertion order, matching the declaration order the
//!   derive macro emits — so JSON output is stable and diffable.
//! - `f32` widens to `f64` (value-exact) on serialize and narrows back with
//!   `as` on deserialize; `f32 -> f64 -> f32` round-trips bit-exactly for
//!   every finite value.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The in-memory data model every serializable type lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (negative values land here).
    Int(i64),
    /// Unsigned integer (non-negative integers land here).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Key/value map preserving insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Human-readable kind name used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] does not match the shape a
/// [`Deserialize`] impl expects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Error with a custom message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// "expected X while deserializing Y, found Z" helper.
    pub fn expected(what: &str, ty: &str, found: &Value) -> Self {
        Self::new(format!(
            "expected {what} while deserializing {ty}, found {}",
            found.kind()
        ))
    }

    /// Missing-field helper.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Self::new(format!("missing field `{field}` while deserializing {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-macro helper: fetch and deserialize one named field of an object.
#[doc(hidden)]
pub fn __get_field<T: Deserialize>(
    obj: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError::new(format!("{ty}.{key}: {e}"))),
        None => Err(DeError::missing_field(key, ty)),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
    )*};
}

serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

macro_rules! deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(DeError::expected(
                            "non-negative integer",
                            stringify!($t),
                            other,
                        ))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n).map_err(|_| {
                        DeError::new(format!(
                            "integer {n} out of range for {}",
                            stringify!($t)
                        ))
                    })?,
                    other => {
                        return Err(DeError::expected(
                            "integer",
                            stringify!($t),
                            other,
                        ))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

deserialize_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            other => Err(DeError::expected("number", "f64", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // The serializer only ever widens f32 -> f64, so narrowing back is
        // exact for every value we produced ourselves.
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", "Vec", other)),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::expected("2-element array", "tuple", other)),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        let third = 1.0f32 / 3.0;
        assert_eq!(f32::from_value(&third.to_value()), Ok(third));
    }

    #[test]
    fn options_and_vecs_round_trip() {
        let some: Option<u8> = Some(3);
        let none: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&some.to_value()), Ok(Some(3)));
        assert_eq!(Option::<u8>::from_value(&none.to_value()), Ok(None));
        let v = vec![1.5f32, -2.0, 0.0];
        assert_eq!(Vec::<f32>::from_value(&v.to_value()), Ok(v));
    }

    #[test]
    fn type_mismatches_report_kinds() {
        let err = u32::from_value(&Value::Str("nope".into())).unwrap_err();
        assert!(err.to_string().contains("string"), "{err}");
        let err = f64::from_value(&Value::Null).unwrap_err();
        assert!(err.to_string().contains("null"), "{err}");
    }

    #[test]
    fn get_field_reports_missing() {
        let obj = vec![("a".to_string(), Value::UInt(1))];
        assert_eq!(__get_field::<u32>(&obj, "a", "T"), Ok(1));
        let err = __get_field::<u32>(&obj, "b", "T").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"), "{err}");
    }
}
