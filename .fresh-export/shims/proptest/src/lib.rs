//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of proptest the workspace's property tests use: the [`proptest!`]
//! macro, `Strategy` with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, `collection::vec`, `bool::ANY`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//! - no shrinking — a failing case panics with the sampled values in scope,
//! - sampling is deterministic per test (seeded from the test name), so
//!   failures reproduce exactly on re-run,
//! - strategies are re-evaluated per case, which is strictly more permissive
//!   than upstream (and cheap at the sizes used here).

#![warn(missing_docs)]

pub mod test_runner {
    //! Test configuration and the deterministic RNG driving sampling.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Configuration for a property test (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl Config {
        /// Config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic RNG used to sample strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeded from the test name so every test gets its own stream but
        /// failures reproduce exactly on re-run.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                inner: StdRng::seed_from_u64(h),
            }
        }
    }

    impl Rng for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinator adapters.

    use super::test_runner::TestRng;
    use rand::RngExt;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then use it to build (and sample) a dependent
        /// strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;

    /// Length specification accepted by [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.random()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-style function running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut __completed: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(50).saturating_add(1000);
            while __completed < __config.cases {
                __attempts += 1;
                if __attempts > __max_attempts {
                    panic!(
                        "proptest: `{}` rejected too many samples via prop_assume!",
                        stringify!($name),
                    );
                }
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
                __completed += 1;
            }
        }
    )*};
}

/// Assert inside a property test (no shrinking here, so it is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current sampled case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3..10usize, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuple_patterns_bind((a, b) in (0..5u32, 0..5u32)) {
            prop_assert!(a < 5 && b < 5);
        }

        #[test]
        fn assume_skips_cases(x in 0..100u32) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0..9u8, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 9));
        }

        #[test]
        fn flat_map_builds_dependent_strategies(
            v in (1..8usize).prop_flat_map(|n| crate::collection::vec(0..n as u32, n))
        ) {
            let n = v.len();
            prop_assert!((1..8).contains(&n));
            prop_assert!(v.iter().all(|&x| (x as usize) < n));
        }

        #[test]
        fn bools_take_both_values(v in crate::collection::vec(crate::bool::ANY, 64usize)) {
            prop_assert!(v.iter().any(|&b| b));
            prop_assert!(v.iter().any(|&b| !b));
        }

        #[test]
        fn just_yields_the_value(x in Just(41)) {
            prop_assert_eq!(x + 1, 42);
            prop_assert_ne!(x, 0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0..1000u32, 5usize);
        let mut a = crate::test_runner::TestRng::deterministic("seed-name");
        let mut b = crate::test_runner::TestRng::deterministic("seed-name");
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }
}
