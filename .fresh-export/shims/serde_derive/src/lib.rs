//! Offline stand-in for `serde_derive`.
//!
//! Derives [`serde::Serialize`]/[`serde::Deserialize`] impls against the
//! concrete `serde::Value` data model of the sibling `serde` shim. Because
//! the environment has no crates.io access there is no `syn`/`quote` here:
//! the item is parsed directly from the `proc_macro::TokenStream` and the
//! impl is generated as a string.
//!
//! Supported shapes — exactly what this workspace uses:
//! - structs with named fields (no generics),
//! - enums whose variants are units or have named fields (externally tagged,
//!   like upstream serde's default representation).
//!
//! Anything else (tuple structs, tuple variants, generics) produces a clear
//! compile error rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving item.
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        /// `(variant_name, None)` for unit variants, `Some(fields)` for
        /// struct variants.
        variants: Vec<(String, Option<Vec<String>>)>,
    },
}

/// Derive `serde::Serialize` (shim data-model flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (shim data-model flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility to reach `struct`/`enum`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` etc: skip the parenthesized restriction.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                panic!("serde shim derive: unexpected token `{s}` before struct/enum");
            }
            other => panic!("serde shim derive: unexpected token {other:?}"),
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, found {other:?}"),
    };
    i += 1;

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde shim derive: generic types are not supported (type `{name}`)")
        }
        other => panic!(
            "serde shim derive: expected braced body for `{name}` \
             (tuple/unit items unsupported), found {other:?}"
        ),
    };

    if kind == "struct" {
        Item::Struct {
            fields: parse_named_fields(body, &name),
            name,
        }
    } else {
        Item::Enum {
            variants: parse_variants(body, &name),
            name,
        }
    }
}

/// Split a brace-group stream into top-level comma-separated segments.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = vec![Vec::new()];
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => segments.push(Vec::new()),
            _ => segments.last_mut().expect("non-empty").push(tt),
        }
    }
    segments.retain(|seg| !seg.is_empty());
    segments
}

/// Extract field names from `name1: Ty1, name2: Ty2, ...` (attrs/vis allowed).
fn parse_named_fields(stream: TokenStream, ty: &str) -> Vec<String> {
    split_commas(stream)
        .into_iter()
        .map(|seg| {
            let mut j = 0;
            loop {
                match seg.get(j) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '#' => j += 2,
                    Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                        j += 1;
                        if let Some(TokenTree::Group(g)) = seg.get(j) {
                            if g.delimiter() == Delimiter::Parenthesis {
                                j += 1;
                            }
                        }
                    }
                    Some(TokenTree::Ident(id)) => {
                        // Must be followed by `:` — otherwise this is not a
                        // named field.
                        match seg.get(j + 1) {
                            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {
                                break id.to_string()
                            }
                            _ => panic!("serde shim derive: `{ty}` must use named fields"),
                        }
                    }
                    other => {
                        panic!("serde shim derive: unexpected token {other:?} in fields of `{ty}`")
                    }
                }
            }
        })
        .collect()
}

/// Extract `(variant, fields?)` pairs from an enum body.
fn parse_variants(stream: TokenStream, ty: &str) -> Vec<(String, Option<Vec<String>>)> {
    split_commas(stream)
        .into_iter()
        .map(|seg| {
            let mut j = 0;
            while let Some(TokenTree::Punct(p)) = seg.get(j) {
                if p.as_char() == '#' {
                    j += 2;
                } else {
                    break;
                }
            }
            let vname = match seg.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => {
                    panic!("serde shim derive: expected variant name in `{ty}`, found {other:?}")
                }
            };
            let fields = match seg.get(j + 1) {
                None => None,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Some(parse_named_fields(g.stream(), ty))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    panic!("serde shim derive: tuple variant `{ty}::{vname}` is unsupported")
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => panic!(
                    "serde shim derive: explicit discriminant on `{ty}::{vname}` is unsupported"
                ),
                other => {
                    panic!("serde shim derive: unexpected token {other:?} after `{ty}::{vname}`")
                }
            };
            (vname, fields)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn object_literal(entries: &[(String, String)]) -> String {
    // entries: (key, expr producing a ::serde::Value)
    let mut code = String::from("{ let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new(); ");
    for (key, expr) in entries {
        code.push_str(&format!(
            "__o.push((::std::string::String::from(\"{key}\"), {expr})); "
        ));
    }
    code.push_str("::serde::Value::Object(__o) }");
    code
}

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let entries: Vec<(String, String)> = fields
        .iter()
        .map(|f| {
            (
                f.clone(),
                format!("::serde::Serialize::to_value(&self.{f})"),
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {} }} \
         }}",
        object_literal(&entries)
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let mut build = format!("::std::result::Result::Ok({name} {{ ");
    for f in fields {
        build.push_str(&format!(
            "{f}: ::serde::__get_field(__obj, \"{f}\", \"{name}\")?, "
        ));
    }
    build.push_str("})");
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ \
             let __obj = match __v {{ \
               ::serde::Value::Object(m) => m, \
               other => return ::std::result::Result::Err(::serde::DeError::expected(\"object\", \"{name}\", other)), \
             }}; \
             {build} \
           }} \
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[(String, Option<Vec<String>>)]) -> String {
    // Externally tagged, matching upstream serde's default:
    //   unit variant    -> "Variant"
    //   struct variant  -> {"Variant": {fields...}}
    let mut arms = String::new();
    for (vname, fields) in variants {
        match fields {
            None => arms.push_str(&format!(
                "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")), "
            )),
            Some(fields) => {
                let bindings = fields.join(", ");
                let inner: Vec<(String, String)> = fields
                    .iter()
                    .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})")))
                    .collect();
                let tagged = object_literal(&[(vname.clone(), object_literal(&inner))]);
                arms.push_str(&format!("{name}::{vname} {{ {bindings} }} => {tagged}, "));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} \
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[(String, Option<Vec<String>>)]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for (vname, fields) in variants {
        match fields {
            None => unit_arms.push_str(&format!(
                "\"{vname}\" => return ::std::result::Result::Ok({name}::{vname}), "
            )),
            Some(fields) => {
                let mut build = format!("::std::result::Result::Ok({name}::{vname} {{ ");
                for f in fields {
                    build.push_str(&format!(
                        "{f}: ::serde::__get_field(__fields, \"{f}\", \"{name}::{vname}\")?, "
                    ));
                }
                build.push_str("})");
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => {{ \
                       let __fields = match __payload {{ \
                         ::serde::Value::Object(m) => m.as_slice(), \
                         other => return ::std::result::Result::Err(::serde::DeError::expected(\"object\", \"{name}::{vname}\", other)), \
                       }}; \
                       return {build}; \
                     }} "
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ \
             match __v {{ \
               ::serde::Value::Str(__s) => match __s.as_str() {{ \
                 {unit_arms} \
                 _ => {{}} \
               }}, \
               ::serde::Value::Object(__m) if __m.len() == 1 => {{ \
                 let (__tag, __payload) = (&__m[0].0, &__m[0].1); \
                 match __tag.as_str() {{ \
                   {tagged_arms} \
                   _ => {{}} \
                 }} \
               }} \
               _ => {{}} \
             }} \
             ::std::result::Result::Err(::serde::DeError::expected(\"a known variant\", \"{name}\", __v)) \
           }} \
         }}"
    )
}
