//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! parallel-iterator surface the workspace uses — `par_iter`,
//! `into_par_iter`, `par_chunks_mut`, `chunks`, thread pools, `join` — with
//! **sequential** execution. Every consumer in the workspace already
//! guarantees order-independent results (ordered reductions, per-sample
//! tapes), so the sequential semantics are observationally identical; on the
//! single-core machines this repo targets today they are also just as fast.
//! Swapping back to real rayon is a one-line change in the workspace
//! manifest.

#![warn(missing_docs)]

/// Number of worker threads the "pool" would use. Reports the machine's
/// available parallelism so chunk-size heuristics stay sensible.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run two closures (sequentially here) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Builder mirroring `rayon::ThreadPoolBuilder`; thread count is recorded
/// but execution stays sequential.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a worker count (recorded for introspection only).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the (sequential) pool. Never fails.
    pub fn build(self) -> Result<ThreadPool, BuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                current_num_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// Error type of [`ThreadPoolBuilder::build`] (never produced).
#[derive(Debug)]
pub struct BuildError(());

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool construction failed")
    }
}

impl std::error::Error for BuildError {}

/// A scoped execution context; `install` simply runs the closure.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` "inside" the pool.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }

    /// Configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

pub mod prelude {
    //! Drop-in traits mirroring `rayon::prelude`: the `par_*` entry points
    //! return ordinary sequential iterators, so every downstream `Iterator`
    //! combinator (`map`, `enumerate`, `for_each`, `collect`, …) works
    //! unchanged.

    /// `.par_iter()` on shared slices and collections.
    pub trait IntoParallelRefIterator<'a> {
        /// The sequential iterator standing in for the parallel one.
        type Iter: Iterator;

        /// Iterate by reference ("in parallel").
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    /// `.par_iter_mut()` on mutable slices and collections.
    pub trait IntoParallelRefMutIterator<'a> {
        /// The sequential iterator standing in for the parallel one.
        type Iter: Iterator;

        /// Iterate by mutable reference ("in parallel").
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for [T] {
        type Iter = std::slice::IterMut<'a, T>;

        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Iter = std::slice::IterMut<'a, T>;

        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// `.into_par_iter()` on owning collections and ranges.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item;
        /// The sequential iterator standing in for the parallel one.
        type Iter: Iterator<Item = Self::Item>;

        /// Consume into a ("parallel") iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = std::ops::Range<usize>;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    /// `.par_chunks_mut(n)` on mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Mutable chunks of at most `chunk_size` elements.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// `.par_chunks(n)` on shared slices.
    pub trait ParallelSlice<T> {
        /// Chunks of at most `chunk_size` elements.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// Rayon's `ParallelIterator::chunks` adapter — groups an owning
    /// iterator's items into `Vec`s of at most `n` elements. Provided for
    /// every sequential iterator so glob-importing this prelude makes
    /// `(0..k).into_par_iter().chunks(c)` compile unchanged.
    pub trait IteratorChunks: Iterator + Sized {
        /// Group items into vectors of at most `size` elements.
        fn chunks(self, size: usize) -> ChunksIter<Self> {
            assert!(size > 0, "chunk size must be positive");
            ChunksIter { inner: self, size }
        }
    }

    impl<I: Iterator> IteratorChunks for I {}

    /// Iterator returned by [`IteratorChunks::chunks`].
    pub struct ChunksIter<I> {
        inner: I,
        size: usize,
    }

    impl<I: Iterator> Iterator for ChunksIter<I> {
        type Item = Vec<I::Item>;

        fn next(&mut self) -> Option<Self::Item> {
            let mut chunk = Vec::with_capacity(self.size);
            for item in self.inner.by_ref() {
                chunk.push(item);
                if chunk.len() == self.size {
                    break;
                }
            }
            if chunk.is_empty() {
                None
            } else {
                Some(chunk)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn range_chunks_groups_in_order() {
        let chunks: Vec<Vec<usize>> = (0..7).into_par_iter().chunks(3).collect();
        assert_eq!(chunks, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]);
    }

    #[test]
    fn par_chunks_mut_mutates() {
        let mut v = [1, 1, 1, 1, 1];
        v.par_chunks_mut(2).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x += i;
            }
        });
        assert_eq!(v, [1, 1, 2, 2, 3]);
    }

    #[test]
    fn pool_installs_and_reports_threads() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .expect("pool");
        assert_eq!(pool.current_num_threads(), 3);
        assert_eq!(pool.install(|| 41 + 1), 42);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
    }
}
